//! Ablation: exchange routing and wire compression on the real payload
//! path.
//!
//! Direct `MPI_Alltoallv` posts `P − 1` messages per rank: at the CPU
//! baseline's 2,688 ranks the per-message software costs bite. The
//! hierarchical (node-aggregated) route — the direction of Pan et al.,
//! SC'18, the paper's §VI — gathers each node's payloads to a leader
//! rank and ships *one coalesced frame per node pair* over the injection
//! tier, cutting the message count by `ranks/node ×` at the cost of
//! crossing the intra-node fabric twice. Both routes run the real
//! payloads end-to-end here (spectra are bit-identical; the table shows
//! the exact per-tier byte accounting behind the timing).
//!
//! The second table layers `--wire-compress` (the KMC 2-style supermer
//! bucket codec) on the supermer counter and reports the physical wire
//! volume and compression ratio against the flat 9 B/supermer records.
//!
//! Usage: `cargo run --release -p dedukt-bench --bin ablation_exchange
//!         [--scale ...] [--nodes N]`

use dedukt_bench::{generate, print_header, ExperimentArgs, Table};
use dedukt_core::{pipeline, Mode, RunConfig};
use dedukt_dna::DatasetId;
use dedukt_net::cost::ExchangeAlgo;
use dedukt_sim::DataVolume;

fn main() {
    let args = ExperimentArgs::parse();
    let nodes = args.nodes.unwrap_or(64);
    let reads = generate(DatasetId::CElegans40x, &args);
    print_header(
        "Ablation — exchange routing and wire compression",
        &format!("C. elegans 40X, {nodes} nodes"),
    );

    let mut t = Table::new([
        "counter",
        "routing",
        "messages/rank",
        "off-node",
        "intra-tier",
        "frames",
        "alltoallv time",
        "total",
    ]);
    // (mode, algo) → (alltoallv time, spectrum fingerprint) for the
    // shape check below.
    let mut times = Vec::new();
    for mode in [Mode::CpuBaseline, Mode::GpuKmer] {
        for algo in [ExchangeAlgo::Direct, ExchangeAlgo::NodeAggregated] {
            let mut rc = RunConfig::new(mode, nodes);
            rc.exchange_algo = algo;
            let r = pipeline::run(&reads, &rc).expect("valid config");
            let msgs = match algo {
                ExchangeAlgo::Direct => r.nranks - 1,
                ExchangeAlgo::NodeAggregated => nodes - 1,
            };
            t.row([
                format!("{mode:?} ({} ranks)", r.nranks),
                dedukt_net::ExchangeRoute::from_algo(algo)
                    .label()
                    .to_string(),
                format!("{msgs}"),
                format!("{}", DataVolume::from_bytes(r.exchange.off_node_bytes)),
                format!("{}", DataVolume::from_bytes(r.exchange.intra_tier_bytes)),
                format!("{}", r.exchange.coalesced_messages),
                format!("{}", r.exchange.alltoallv_time),
                format!("{}", r.total_time()),
            ]);
            times.push((mode, algo, r.exchange.alltoallv_time, r.total_kmers));
        }
    }
    t.print();
    println!();

    let mut c = Table::new([
        "counter",
        "wire codec",
        "logical",
        "physical",
        "ratio",
        "alltoallv time",
    ]);
    // The codec's win is per minimizer bucket: buckets need enough
    // supermers to amortise the 3-byte bucket header, so the codec lane
    // runs at a dense shape (buckets thin out quadratically with rank
    // count at fixed input size).
    let codec_nodes = nodes.min(4);
    let mut ratios = Vec::new();
    for compress in [false, true] {
        let mut rc = RunConfig::new(Mode::GpuSupermer, codec_nodes);
        rc.wire_compress = compress;
        let r = pipeline::run(&reads, &rc).expect("valid config");
        // Logical = flat 9 B/supermer records; physical = what the wire
        // actually carried (identical to logical without the codec).
        let logical = r.exchange.units * 9;
        let ratio = logical as f64 / r.exchange.bytes.max(1) as f64;
        c.row([
            format!("GpuSupermer ({} ranks)", r.nranks),
            if compress { "packed" } else { "flat" }.to_string(),
            format!("{}", DataVolume::from_bytes(logical)),
            format!("{}", DataVolume::from_bytes(r.exchange.bytes)),
            format!("{ratio:.2}x"),
            format!("{}", r.exchange.alltoallv_time),
        ]);
        ratios.push(ratio);
    }
    assert!(
        ratios[1] > 1.3,
        "wire codec must shrink the supermer exchange > 1.3x, got {:.2}x",
        ratios[1]
    );
    c.print();
    println!();
    println!(
        "expected shape: hierarchical routing wins where message count dominates (many\n\
         ranks, modest payloads — the 2,688-rank CPU baseline) and loses where the\n\
         double intra-node hop outweighs it (large payloads, few ranks); the wire\n\
         codec shrinks the supermer exchange > 1.3x with bit-identical spectra."
    );
    // Make the CPU-shape claim self-checking when run at the paper's 64
    // nodes: 2,688 ranks is exactly where aggregation must win.
    if nodes >= 64 {
        let direct = times
            .iter()
            .find(|(m, a, ..)| *m == Mode::CpuBaseline && *a == ExchangeAlgo::Direct)
            .expect("ran");
        let hier = times
            .iter()
            .find(|(m, a, ..)| *m == Mode::CpuBaseline && *a == ExchangeAlgo::NodeAggregated)
            .expect("ran");
        assert!(
            hier.2 < direct.2,
            "hierarchical must beat direct at the Summit CPU shape: {} vs {}",
            hier.2,
            direct.2
        );
        assert_eq!(hier.3, direct.3, "routing must not change counts");
    }
}
