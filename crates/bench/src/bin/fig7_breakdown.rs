//! Regenerates Fig. 7: runtime breakdown of the GPU k-mer counter vs the
//! supermer counters (m=7, m=9) on 64 nodes (384 GPUs).
//!
//! Fig. 7a: C. elegans 40X; Fig. 7b: H. sapiens 54X. The paper's shape:
//! supermers cost ~27-33% more parse time and ~23-27% more count time but
//! cut the exchange by ~33%, for a net win because the exchange dominates.
//!
//! Usage: `cargo run --release -p dedukt-bench --bin fig7_breakdown
//!         [--scale ...] [--nodes N]`

use dedukt_bench::runner::run_mode_with_m;
use dedukt_bench::{generate, print_header, run_mode, ExperimentArgs, Table};
use dedukt_core::Mode;
use dedukt_dna::DatasetId;

fn main() {
    let args = ExperimentArgs::parse();
    let nodes = args.nodes.unwrap_or(64);
    for (sub, id) in [('a', DatasetId::CElegans40x), ('b', DatasetId::HSapiens54x)] {
        print_header(
            &format!(
                "Fig. 7{sub} — GPU k-mer vs supermer breakdown: {}",
                id.short_name()
            ),
            &format!(
                "{nodes} nodes, {} GPU ranks; times are simulated",
                nodes * 6
            ),
        );
        let reads = generate(id, &args);
        let kmer = run_mode(&reads, Mode::GpuKmer, nodes, &args);
        let sm7 = run_mode_with_m(&reads, Mode::GpuSupermer, nodes, 7, &args);
        let sm9 = run_mode_with_m(&reads, Mode::GpuSupermer, nodes, 9, &args);

        let mut t = Table::new(["module", "kmer", "supermer (m=7)", "supermer (m=9)"]);
        t.row([
            "parse & process kmers".to_string(),
            format!("{}", kmer.phases.parse),
            format!("{}", sm7.phases.parse),
            format!("{}", sm9.phases.parse),
        ]);
        t.row([
            "exchange (incl. MPI_alltoallv)".to_string(),
            format!("{}", kmer.phases.exchange),
            format!("{}", sm7.phases.exchange),
            format!("{}", sm9.phases.exchange),
        ]);
        t.row([
            "kmer counter".to_string(),
            format!("{}", kmer.phases.count),
            format!("{}", sm7.phases.count),
            format!("{}", sm9.phases.count),
        ]);
        t.row([
            "TOTAL".to_string(),
            format!("{}", kmer.total_time()),
            format!("{}", sm7.total_time()),
            format!("{}", sm9.total_time()),
        ]);
        t.print();
        println!();
        println!(
            "parse overhead m=7: {:+.0}%   (paper: +27-33%)",
            (sm7.phases.parse / kmer.phases.parse - 1.0) * 100.0
        );
        println!(
            "count overhead m=7: {:+.0}%   (paper: +23-27%)",
            (sm7.phases.count / kmer.phases.count - 1.0) * 100.0
        );
        println!(
            "exchange speedup m=7: {:.2}x   (paper: ~1.5x incl. staging)",
            kmer.phases.exchange / sm7.phases.exchange
        );
        println!(
            "overall speedup m=7 over kmer: {:.2}x",
            kmer.total_time() / sm7.total_time()
        );
    }
}
