//! The paper's reported numbers, for side-by-side printing in the
//! regenerated tables (EXPERIMENTS.md quotes the same constants).

use dedukt_dna::DatasetId;

/// Table II: `(k-mers, supermers m=9, supermers m=7)` exchanged.
pub fn table2_counts(id: DatasetId) -> (u64, u64, u64) {
    match id {
        DatasetId::EColi30x => (412_000_000, 126_000_000, 108_000_000),
        DatasetId::PAeruginosa30x => (187_000_000, 56_000_000, 48_000_000),
        DatasetId::VVulnificus30x => (154_000_000, 47_000_000, 41_000_000),
        DatasetId::ABaumannii30x => (129_000_000, 40_000_000, 34_000_000),
        DatasetId::CElegans40x => (4_700_000_000, 1_500_000_000, 1_300_000_000),
        DatasetId::HSapiens54x => (167_000_000_000, 59_000_000_000, 50_000_000_000),
    }
}

/// Table II's reduction factor k-mers / supermers(m=7) for a dataset.
pub fn table2_reduction_m7(id: DatasetId) -> f64 {
    let (k, _, s7) = table2_counts(id);
    k as f64 / s7 as f64
}

/// Table III (384 GPUs): `(avg, kmer_min, kmer_max, smer_min, smer_max,
/// imbalance)` in k-mer instances.
pub fn table3_row(id: DatasetId) -> Option<(u64, u64, u64, u64, u64, f64)> {
    match id {
        DatasetId::CElegans40x => Some((
            12_000_000, 12_000_000, 14_000_000, 3_000_000, 50_000_000, 1.16,
        )),
        DatasetId::HSapiens54x => Some((
            255_000_000,
            253_000_000,
            283_000_000,
            41_000_000,
            606_000_000,
            2.37,
        )),
        _ => None,
    }
}

/// Fig. 6 overall speedups over the CPU baseline (approximate read-offs):
/// average ~11× (k-mer) and ~13× (supermer) on 16 nodes; up to 150× on
/// H. sapiens at 64 nodes.
pub const FIG6A_AVG_KMER_SPEEDUP: f64 = 11.0;
pub const FIG6A_AVG_SUPERMER_SPEEDUP: f64 = 13.0;
pub const FIG6B_HSAPIENS_MAX_SPEEDUP: f64 = 150.0;

/// Fig. 7 (64 nodes): supermer parse +33%, count +27%, exchange −33% on
/// H. sapiens.
pub const FIG7_PARSE_OVERHEAD: f64 = 1.33;
pub const FIG7_COUNT_OVERHEAD: f64 = 1.27;
pub const FIG7_EXCHANGE_SPEEDUP: f64 = 1.5;

/// Fig. 8: up to 3× Alltoallv speedup (H. sapiens, 64 nodes, m=7).
pub const FIG8_MAX_ALLTOALLV_SPEEDUP: f64 = 3.0;

/// Fig. 9: C. elegans and H. sapiens scale 2.3× from 64 to 128 nodes.
pub const FIG9_64_TO_128_SCALING: f64 = 2.3;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_reductions_are_3_to_4x() {
        for id in DatasetId::ALL {
            let r = table2_reduction_m7(id);
            assert!((3.0..4.5).contains(&r), "{id:?}: {r}");
        }
    }

    #[test]
    fn table3_rows_exist_for_large_datasets() {
        assert!(table3_row(DatasetId::CElegans40x).is_some());
        assert!(table3_row(DatasetId::HSapiens54x).is_some());
        assert!(table3_row(DatasetId::EColi30x).is_none());
    }
}
