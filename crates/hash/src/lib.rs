//! MurmurHash3 and partition-hashing utilities.
//!
//! The paper's pipelines route every k-mer (or supermer minimizer) to its
//! owner rank with MurmurHash3 (Algorithm 1, line 5). This crate implements
//! MurmurHash3 from scratch — both the 32-bit x86 variant and the 128-bit
//! x64 variant — verified against the reference test vectors of Appleby's
//! SMHasher, plus the rank-assignment helpers built on top.

#![warn(missing_docs)]

pub mod murmur3;
pub mod partition;

pub use murmur3::{fmix32, fmix64, murmur3_x64_128, murmur3_x86_32, Murmur3x64};
pub use partition::{owner_rank, owner_rank_mult_shift};
