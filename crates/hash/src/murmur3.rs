//! MurmurHash3, implemented from the public-domain reference
//! (Austin Appleby, `MurmurHash3.cpp` in SMHasher).
//!
//! Two variants are provided:
//!
//! * [`murmur3_x86_32`] — the 32-bit variant, handy for small experiments
//!   and for cross-checking against external implementations.
//! * [`murmur3_x64_128`] — the 128-bit x64 variant the paper's code uses to
//!   hash packed k-mers; callers typically take the low 64 bits.
//!
//! A convenience wrapper [`Murmur3x64`] hashes `u64`/`u128` packed k-mers
//! without materialising a byte slice on the heap.

/// MurmurHash3 32-bit finalizer ("fmix32"): avalanches a 32-bit value.
#[inline]
pub fn fmix32(mut h: u32) -> u32 {
    h ^= h >> 16;
    h = h.wrapping_mul(0x85EB_CA6B);
    h ^= h >> 13;
    h = h.wrapping_mul(0xC2B2_AE35);
    h ^ (h >> 16)
}

/// MurmurHash3 64-bit finalizer ("fmix64"): avalanches a 64-bit value.
#[inline]
pub fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    k ^= k >> 33;
    k = k.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    k ^ (k >> 33)
}

/// MurmurHash3_x86_32: hashes `data` with the given `seed`.
pub fn murmur3_x86_32(data: &[u8], seed: u32) -> u32 {
    const C1: u32 = 0xCC9E_2D51;
    const C2: u32 = 0x1B87_3593;

    let nblocks = data.len() / 4;
    let mut h1 = seed;

    // Body: 4-byte little-endian blocks.
    for block in data[..nblocks * 4].chunks_exact(4) {
        let mut k1 = u32::from_le_bytes(block.try_into().unwrap());
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(15);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
        h1 = h1.rotate_left(13);
        h1 = h1.wrapping_mul(5).wrapping_add(0xE654_6B64);
    }

    // Tail: up to 3 remaining bytes.
    let tail = &data[nblocks * 4..];
    let mut k1: u32 = 0;
    if tail.len() >= 3 {
        k1 ^= (tail[2] as u32) << 16;
    }
    if tail.len() >= 2 {
        k1 ^= (tail[1] as u32) << 8;
    }
    if !tail.is_empty() {
        k1 ^= tail[0] as u32;
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(15);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
    }

    fmix32(h1 ^ data.len() as u32)
}

const C1: u64 = 0x87C3_7B91_1142_53D5;
const C2: u64 = 0x4CF5_AD43_2745_937F;

/// MurmurHash3_x64_128: hashes `data` with the given `seed`, returning the
/// 128-bit digest as `(h1, h2)`.
pub fn murmur3_x64_128(data: &[u8], seed: u64) -> (u64, u64) {
    let nblocks = data.len() / 16;
    let mut h1 = seed;
    let mut h2 = seed;

    for block in data[..nblocks * 16].chunks_exact(16) {
        let k1 = u64::from_le_bytes(block[..8].try_into().unwrap());
        let k2 = u64::from_le_bytes(block[8..].try_into().unwrap());
        let (nh1, nh2) = mix_block(h1, h2, k1, k2);
        h1 = nh1;
        h2 = nh2;
    }

    // Tail: up to 15 remaining bytes.
    let tail = &data[nblocks * 16..];
    let mut k1: u64 = 0;
    let mut k2: u64 = 0;
    for i in (8..tail.len()).rev() {
        k2 ^= (tail[i] as u64) << ((i - 8) * 8);
    }
    if tail.len() > 8 {
        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;
    }
    for i in (0..tail.len().min(8)).rev() {
        k1 ^= (tail[i] as u64) << (i * 8);
    }
    if !tail.is_empty() {
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
    }

    finalize(h1, h2, data.len() as u64)
}

/// One 16-byte body round of MurmurHash3_x64_128.
#[inline]
fn mix_block(mut h1: u64, mut h2: u64, mut k1: u64, mut k2: u64) -> (u64, u64) {
    k1 = k1.wrapping_mul(C1);
    k1 = k1.rotate_left(31);
    k1 = k1.wrapping_mul(C2);
    h1 ^= k1;
    h1 = h1.rotate_left(27);
    h1 = h1.wrapping_add(h2);
    h1 = h1.wrapping_mul(5).wrapping_add(0x52DC_E729);

    k2 = k2.wrapping_mul(C2);
    k2 = k2.rotate_left(33);
    k2 = k2.wrapping_mul(C1);
    h2 ^= k2;
    h2 = h2.rotate_left(31);
    h2 = h2.wrapping_add(h1);
    h2 = h2.wrapping_mul(5).wrapping_add(0x3849_5AB5);
    (h1, h2)
}

#[inline]
fn finalize(mut h1: u64, mut h2: u64, len: u64) -> (u64, u64) {
    h1 ^= len;
    h2 ^= len;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    (h1, h2)
}

/// Fixed-width MurmurHash3_x64_128 over packed k-mer words, avoiding byte
/// slices entirely. This is the hot path: the paper hashes every k-mer once
/// to find its destination and once more on insertion.
#[derive(Clone, Copy, Debug)]
pub struct Murmur3x64 {
    seed: u64,
}

impl Murmur3x64 {
    /// Creates a hasher with the given seed. All ranks must share one seed,
    /// otherwise a k-mer would map to different owners on different ranks.
    pub const fn new(seed: u64) -> Self {
        Murmur3x64 { seed }
    }

    /// Hashes one `u64` (a packed k-mer with k ≤ 32). Equivalent to
    /// `murmur3_x64_128(&word.to_le_bytes(), seed).0`.
    #[inline]
    pub fn hash_u64(&self, word: u64) -> u64 {
        // 8-byte input: body is empty, all bytes land in the k1 tail lane.
        let mut k1 = word;
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        let h1 = self.seed ^ k1;
        finalize(h1, self.seed, 8).0
    }

    /// Hashes one `u128` (a packed k-mer with k ≤ 64). Equivalent to
    /// `murmur3_x64_128(&word.to_le_bytes(), seed).0`.
    #[inline]
    pub fn hash_u128(&self, word: u128) -> u64 {
        // 16-byte input: exactly one body block, empty tail.
        let k1 = word as u64;
        let k2 = (word >> 64) as u64;
        let (h1, h2) = mix_block(self.seed, self.seed, k1, k2);
        finalize(h1, h2, 16).0
    }

    /// The hasher's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference vectors computed with the canonical C++ implementation
    // (SMHasher) and cross-checked against the widely used Python `mmh3`
    // package.
    #[test]
    fn x86_32_reference_vectors() {
        assert_eq!(murmur3_x86_32(b"", 0), 0);
        assert_eq!(murmur3_x86_32(b"", 1), 0x514E28B7);
        assert_eq!(murmur3_x86_32(b"", 0xFFFF_FFFF), 0x81F16F39);
        assert_eq!(murmur3_x86_32(b"\xff\xff\xff\xff", 0), 0x76293B50);
        assert_eq!(murmur3_x86_32(b"!Ce\x87", 0), 0xF55B516B);
        assert_eq!(murmur3_x86_32(b"!Ce", 0), 0x7E4A8634);
        assert_eq!(murmur3_x86_32(b"!C", 0), 0xA0F7B07A);
        assert_eq!(murmur3_x86_32(b"!", 0), 0x72661CF4);
        assert_eq!(murmur3_x86_32(b"\0\0\0\0", 0), 0x2362F9DE);
        assert_eq!(murmur3_x86_32(b"aaaa", 0x9747b28c), 0x5A97808A);
        assert_eq!(murmur3_x86_32(b"Hello, world!", 0x9747b28c), 0x24884CBA);
        assert_eq!(
            murmur3_x86_32(b"The quick brown fox jumps over the lazy dog", 0x9747b28c),
            0x2FA826CD
        );
    }

    #[test]
    fn x64_128_reference_vectors() {
        // From the reference C++ implementation / Python mmh3.hash64.
        assert_eq!(murmur3_x64_128(b"", 0), (0, 0));
        assert_eq!(
            murmur3_x64_128(b"hello", 0),
            (0xCBD8_A7B3_41BD_9B02, 0x5B1E_906A_48AE_1D19)
        );
    }

    #[test]
    fn x64_128_tail_lengths_all_distinct() {
        // Exercise every tail length 0..=15 plus one body block; all digests
        // must be distinct and stable across calls.
        let data = b"ACGTACGTACGTACGTACGTACGTACGTACG"; // 31 bytes
        let mut seen = std::collections::HashSet::new();
        for len in 0..=data.len() {
            let d = murmur3_x64_128(&data[..len], 42);
            assert!(seen.insert(d), "collision at len {len}");
            assert_eq!(d, murmur3_x64_128(&data[..len], 42));
        }
    }

    #[test]
    fn x64_128_seed_changes_hash() {
        let a = murmur3_x64_128(b"ACGTACGTACGTACGTA", 0);
        let b = murmur3_x64_128(b"ACGTACGTACGTACGTA", 1);
        assert_ne!(a, b);
    }

    #[test]
    fn hash_u64_matches_byte_slice_path() {
        let h = Murmur3x64::new(0x5EED);
        for w in [0u64, 1, 0xDEAD_BEEF, u64::MAX, 0x0123_4567_89AB_CDEF] {
            assert_eq!(
                h.hash_u64(w),
                murmur3_x64_128(&w.to_le_bytes(), 0x5EED).0,
                "word {w:#x}"
            );
        }
    }

    #[test]
    fn hash_u128_matches_byte_slice_path() {
        let h = Murmur3x64::new(7);
        for w in [
            0u128,
            1,
            u128::MAX,
            0x0123_4567_89AB_CDEF_FEDC_BA98_7654_3210,
        ] {
            assert_eq!(
                h.hash_u128(w),
                murmur3_x64_128(&w.to_le_bytes(), 7).0,
                "word {w:#x}"
            );
        }
    }

    #[test]
    fn fmix64_is_bijective_on_samples() {
        // fmix64 must not collide on distinct inputs we can enumerate cheaply
        // (it is a bijection; spot-check injectivity).
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(fmix64(i)));
        }
    }

    #[test]
    fn avalanche_quality_rough() {
        // Flipping one input bit should flip ~half the output bits on
        // average. Loose bounds — this is a sanity check, not SMHasher.
        let mut total_flips = 0u32;
        let trials = 64;
        for bit in 0..trials {
            let a = fmix64(0xABCD_EF01_2345_6789);
            let b = fmix64(0xABCD_EF01_2345_6789 ^ (1u64 << bit));
            total_flips += (a ^ b).count_ones();
        }
        let avg = total_flips as f64 / trials as f64;
        assert!((24.0..40.0).contains(&avg), "avg flips {avg}");
    }
}
