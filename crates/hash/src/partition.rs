//! Mapping hashes to owner ranks.
//!
//! Algorithm 1 of the paper computes `P = HASH(kmer, nProc)`: the destination
//! processor for a k-mer is a function of its hash and the communicator
//! size. Two reduction schemes are provided:
//!
//! * [`owner_rank`] — plain modulo, as in the paper's pseudo-code.
//! * [`owner_rank_mult_shift`] — Lemire's multiply-shift reduction, which
//!   avoids the slight bias of modulo for non-power-of-two rank counts and
//!   is faster on most hardware. The pipelines default to this.
//!
//! Both are deterministic functions of `(hash, nranks)`, which is the only
//! property correctness relies on: every instance of a k-mer, wherever it is
//! parsed, must map to the same owner.

/// Owner rank by modulo reduction (`hash % nranks`), the textbook scheme.
#[inline]
pub fn owner_rank(hash: u64, nranks: usize) -> usize {
    debug_assert!(nranks > 0);
    (hash % nranks as u64) as usize
}

/// Owner rank by multiply-shift reduction: maps `hash` uniformly onto
/// `[0, nranks)` using the high bits instead of the low bits.
#[inline]
pub fn owner_rank_mult_shift(hash: u64, nranks: usize) -> usize {
    debug_assert!(nranks > 0);
    ((hash as u128 * nranks as u128) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::murmur3::Murmur3x64;

    #[test]
    fn always_in_range() {
        for nranks in [1usize, 2, 3, 6, 42, 96, 384, 2688] {
            for h in [0u64, 1, u64::MAX, 0x8000_0000_0000_0000, 12345] {
                assert!(owner_rank(h, nranks) < nranks);
                assert!(owner_rank_mult_shift(h, nranks) < nranks);
            }
        }
    }

    #[test]
    fn single_rank_maps_everything_to_zero() {
        for h in 0..100u64 {
            assert_eq!(owner_rank(h, 1), 0);
            assert_eq!(owner_rank_mult_shift(h, 1), 0);
        }
    }

    #[test]
    fn mult_shift_distributes_murmur_uniformly() {
        // Hash sequential k-mer-like words; the buckets should be near-even.
        let h = Murmur3x64::new(0);
        let nranks = 96;
        let mut buckets = vec![0u32; nranks];
        let n = 96_000u64;
        for w in 0..n {
            buckets[owner_rank_mult_shift(h.hash_u64(w), nranks)] += 1;
        }
        let expect = n as f64 / nranks as f64;
        for (i, &b) in buckets.iter().enumerate() {
            assert!(
                (b as f64 - expect).abs() < expect * 0.25,
                "bucket {i} has {b}, expect ~{expect}"
            );
        }
    }

    #[test]
    fn modulo_distributes_murmur_uniformly() {
        let h = Murmur3x64::new(0);
        let nranks = 42;
        let mut buckets = vec![0u32; nranks];
        let n = 84_000u64;
        for w in 0..n {
            buckets[owner_rank(h.hash_u64(w), nranks)] += 1;
        }
        let expect = n as f64 / nranks as f64;
        for &b in &buckets {
            assert!((b as f64 - expect).abs() < expect * 0.25);
        }
    }

    #[test]
    fn deterministic_across_calls() {
        let h = Murmur3x64::new(99);
        let v = h.hash_u64(0xAC61_u64 + 1); // arbitrary word
        assert_eq!(owner_rank_mult_shift(v, 384), owner_rank_mult_shift(v, 384));
    }
}
