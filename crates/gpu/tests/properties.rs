//! Property tests for the GPU simulator: the cost model must behave like
//! a physical machine (monotone in work, bounded by configuration), and
//! execution must cover the launch space exactly.

use dedukt_gpu::cost::kernel_time;
use dedukt_gpu::occupancy::{achieved_occupancy, theoretical_occupancy};
use dedukt_gpu::transfer::{transfer_time, Link};
use dedukt_gpu::{Device, DeviceConfig, LaunchConfig, WorkTally};
use dedukt_sim::DataVolume;
use proptest::prelude::*;

fn tally_strategy() -> impl Strategy<Value = WorkTally> {
    (
        0u64..1 << 40,
        0u64..1 << 34,
        0u64..1 << 34,
        0u64..1 << 30,
        0u64..1 << 30,
        0u64..1 << 30,
    )
        .prop_map(|(i, gc, gr, a, c, d)| WorkTally {
            instructions: i.max(d), // divergent ≤ instructions by construction
            gmem_coalesced_bytes: gc,
            gmem_random_bytes: gr,
            atomics: a.max(c),
            atomic_conflicts: c,
            divergent_instructions: d,
        })
}

proptest! {
    /// Adding work in any dimension never makes a kernel faster.
    #[test]
    fn kernel_time_monotone_in_work(t in tally_strategy(), occ in 0.05f64..1.0) {
        let cfg = DeviceConfig::v100();
        let (base, _) = kernel_time(&cfg, &t, occ);
        for grow in 0..5usize {
            let mut bigger = t;
            match grow {
                0 => bigger.instructions += 1 << 20,
                1 => bigger.gmem_coalesced_bytes += 1 << 20,
                2 => bigger.gmem_random_bytes += 1 << 20,
                3 => bigger.atomics += 1 << 16,
                _ => {
                    bigger.divergent_instructions += 1 << 16;
                    bigger.instructions += 1 << 16;
                }
            }
            let (grown, _) = kernel_time(&cfg, &bigger, occ);
            prop_assert!(grown >= base, "dim {grow}: {grown} < {base}");
        }
    }

    /// Higher occupancy never slows a kernel down.
    #[test]
    fn kernel_time_monotone_in_occupancy(t in tally_strategy(), lo in 0.05f64..0.5) {
        let cfg = DeviceConfig::v100();
        let hi = (lo * 2.0).min(1.0);
        let (t_lo, _) = kernel_time(&cfg, &t, lo);
        let (t_hi, _) = kernel_time(&cfg, &t, hi);
        prop_assert!(t_hi <= t_lo);
    }

    /// Occupancy always lies in (0, 1], and achieved ≤ theoretical.
    #[test]
    fn occupancy_bounds(blocks in 1u32..100_000, bt_exp in 5u32..11) {
        let cfg = DeviceConfig::v100();
        let block_threads = 1u32 << bt_exp; // 32..=1024
        let theo = theoretical_occupancy(&cfg, block_threads);
        let ach = achieved_occupancy(&cfg, LaunchConfig { grid_blocks: blocks, block_threads });
        prop_assert!(theo > 0.0 && theo <= 1.0);
        prop_assert!(ach > 0.0 && ach <= theo + 1e-12);
    }

    /// Every (block, thread) coordinate executes exactly once, for any
    /// launch shape.
    #[test]
    fn launch_covers_coordinates_exactly(blocks in 1u32..40, bt_exp in 5u32..9) {
        let device = Device::v100();
        let cfg = LaunchConfig { grid_blocks: blocks, block_threads: 1 << bt_exp };
        let hits = device.alloc_atomic(cfg.total_threads()).unwrap();
        device.launch("cover", cfg, |b| {
            for t in b.threads() {
                hits.fetch_add(t.global_id(), 1);
            }
        });
        prop_assert!(hits.snapshot().iter().all(|&h| h == 1));
    }

    /// Transfers are monotone in volume and NVLink never loses to PCIe.
    #[test]
    fn transfer_monotone(bytes in 0u64..1 << 34, extra in 1u64..1 << 20) {
        let cfg = DeviceConfig::v100();
        for link in [Link::Pcie, Link::NvLink] {
            let a = transfer_time(&cfg, link, DataVolume::from_bytes(bytes));
            let b = transfer_time(&cfg, link, DataVolume::from_bytes(bytes + extra));
            prop_assert!(b > a);
        }
        let p = transfer_time(&cfg, Link::Pcie, DataVolume::from_bytes(bytes));
        let n = transfer_time(&cfg, Link::NvLink, DataVolume::from_bytes(bytes));
        prop_assert!(n <= p);
    }

    /// Device memory accounting: allocations and drops always balance.
    #[test]
    fn memory_accounting_balances(sizes in prop::collection::vec(1usize..1 << 16, 1..20)) {
        let device = Device::v100();
        {
            let mut held = Vec::new();
            let mut expected = 0u64;
            for &s in &sizes {
                held.push(device.alloc_zeroed::<u64>(s).unwrap());
                expected += (s * 8) as u64;
                prop_assert_eq!(device.allocated_bytes(), expected);
            }
        }
        prop_assert_eq!(device.allocated_bytes(), 0);
        prop_assert!(device.peak_bytes() >= sizes.iter().map(|&s| (s * 8) as u64).max().unwrap());
    }
}
