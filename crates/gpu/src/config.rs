//! Device parameter sets.
//!
//! Parameters for the V100 preset follow the paper's §V-A hardware
//! description (80 SMs, 16 GB HBM2, 6 MB L2, NVLink at 25 GB/s per link)
//! and NVIDIA's published V100 specifications (1.53 GHz boost clock,
//! ~900 GB/s HBM2 bandwidth).

use dedukt_sim::Rate;

/// Static description of a simulated GPU.
#[derive(Clone, Debug)]
pub struct DeviceConfig {
    /// Marketing name, for reports.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Threads per warp (32 on every NVIDIA architecture to date).
    pub warp_size: u32,
    /// Hardware limit on threads per block.
    pub max_threads_per_block: u32,
    /// Hardware limit on resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Hardware limit on resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Device memory capacity in bytes.
    pub memory_bytes: u64,
    /// Device memory (HBM) bandwidth.
    pub hbm_bandwidth: Rate,
    /// L2 cache size in bytes.
    pub l2_bytes: u64,
    /// Simple integer/logic instructions retired per clock per SM,
    /// aggregated over all schedulers (V100: 4 schedulers × 16 INT32
    /// lanes = 64).
    pub int_ipc_per_sm: f64,
    /// Throughput of *uncontended* global atomics (device-wide,
    /// operations per second).
    pub atomic_throughput: Rate,
    /// Extra slowdown factor applied per expected conflict on contended
    /// atomics (serialisation of colliding updates).
    pub atomic_contention_penalty: f64,
    /// Kernel launch overhead charged once per launch.
    pub launch_overhead_us: f64,
    /// Host link bandwidth (PCIe gen3 x16 ≈ 16 GB/s).
    pub pcie_bandwidth: Rate,
    /// NVLink bandwidth per direction (§V-A: 25 GB/s per link).
    pub nvlink_bandwidth: Rate,
    /// One-way transfer setup latency in microseconds.
    pub transfer_latency_us: f64,
}

impl DeviceConfig {
    /// NVIDIA V100-SXM2-16GB, the Summit GPU (§V-A).
    pub fn v100() -> DeviceConfig {
        DeviceConfig {
            name: "NVIDIA V100-SXM2-16GB".into(),
            num_sms: 80,
            clock_ghz: 1.53,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            memory_bytes: 16 * (1 << 30),
            hbm_bandwidth: Rate::gb_per_sec(900.0),
            l2_bytes: 6 * (1 << 20),
            int_ipc_per_sm: 64.0,
            atomic_throughput: Rate::gitems_per_sec(2.0),
            atomic_contention_penalty: 4.0,
            launch_overhead_us: 5.0,
            pcie_bandwidth: Rate::gb_per_sec(16.0),
            nvlink_bandwidth: Rate::gb_per_sec(25.0),
            transfer_latency_us: 10.0,
        }
    }

    /// NVIDIA A100-SXM4-40GB — not used by the paper, provided for
    /// "what would a newer machine do" extension studies.
    pub fn a100() -> DeviceConfig {
        DeviceConfig {
            name: "NVIDIA A100-SXM4-40GB".into(),
            num_sms: 108,
            clock_ghz: 1.41,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            memory_bytes: 40 * (1 << 30),
            hbm_bandwidth: Rate::gb_per_sec(1555.0),
            l2_bytes: 40 * (1 << 20),
            int_ipc_per_sm: 64.0,
            atomic_throughput: Rate::gitems_per_sec(4.0),
            atomic_contention_penalty: 4.0,
            launch_overhead_us: 4.0,
            pcie_bandwidth: Rate::gb_per_sec(31.0),
            nvlink_bandwidth: Rate::gb_per_sec(50.0),
            transfer_latency_us: 8.0,
        }
    }

    /// Peak simple-instruction throughput of the whole device, in
    /// instructions per second.
    pub fn peak_instr_rate(&self) -> Rate {
        Rate::per_sec(self.num_sms as f64 * self.int_ipc_per_sm * self.clock_ghz * 1e9)
    }

    /// Maximum resident warps per SM.
    pub fn max_warps_per_sm(&self) -> u32 {
        self.max_threads_per_sm / self.warp_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_matches_paper_section_5a() {
        let c = DeviceConfig::v100();
        assert_eq!(c.num_sms, 80);
        assert_eq!(c.memory_bytes, 16 * (1 << 30));
        assert_eq!(c.l2_bytes, 6 * (1 << 20));
        // NVLink peak per §V-A: 25 GB/s.
        assert!((c.nvlink_bandwidth.units_per_sec() - 25e9).abs() < 1.0);
    }

    #[test]
    fn derived_quantities() {
        let c = DeviceConfig::v100();
        assert_eq!(c.max_warps_per_sm(), 64);
        // 80 SMs * 64 IPC * 1.53 GHz ≈ 7.8 Tops.
        let r = c.peak_instr_rate().units_per_sec();
        assert!((r - 80.0 * 64.0 * 1.53e9).abs() < 1e3);
    }

    #[test]
    fn a100_is_strictly_bigger() {
        let v = DeviceConfig::v100();
        let a = DeviceConfig::a100();
        assert!(a.memory_bytes > v.memory_bytes);
        assert!(a.hbm_bandwidth.units_per_sec() > v.hbm_bandwidth.units_per_sec());
        assert!(a.num_sms > v.num_sms);
    }
}
