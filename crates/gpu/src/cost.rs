//! The analytic kernel cost model.
//!
//! Converts a merged [`WorkTally`] into a simulated kernel duration against
//! a [`DeviceConfig`]. The model is a classic bounded-overlap roofline:
//! compute, memory and atomic pipelines proceed concurrently, so the kernel
//! takes as long as its *slowest* pipeline, plus a fixed launch overhead.
//!
//! Modelling choices (all deliberately simple, all documented here):
//!
//! * **Compute** — simple instructions retire at the device's peak rate
//!   scaled by an occupancy efficiency (latency hiding saturates around
//!   ~50% occupancy, the usual CUDA guidance) and stretched by warp
//!   divergence (divergent instructions execute both branch paths).
//! * **Memory** — coalesced traffic moves at full HBM bandwidth; random
//!   traffic pays a 1/8 efficiency factor (a 32-byte minimum transaction
//!   servicing a 4-byte useful access).
//! * **Atomics** — uncontended atomics stream at `atomic_throughput`;
//!   each expected conflict serialises and costs
//!   `atomic_contention_penalty` extra slots.

use crate::config::DeviceConfig;
use crate::launch::WorkTally;
use dedukt_sim::SimTime;

/// Fraction of peak HBM bandwidth achieved by fully random accesses.
pub const RANDOM_ACCESS_EFFICIENCY: f64 = 0.125;

/// Occupancy at which latency hiding saturates; efficiency ramps linearly
/// up to this point and is flat afterwards.
pub const OCCUPANCY_KNEE: f64 = 0.5;

/// Component durations behind a kernel time.
#[derive(Clone, Copy, Debug, Default)]
pub struct TimeBreakdown {
    /// Instruction-pipeline time.
    pub compute: SimTime,
    /// Memory-pipeline time.
    pub memory: SimTime,
    /// Atomic-pipeline time.
    pub atomics: SimTime,
    /// Fixed launch overhead.
    pub overhead: SimTime,
}

impl TimeBreakdown {
    /// The bounding pipeline plus overhead — the modelled kernel duration.
    pub fn total(&self) -> SimTime {
        self.compute.max(self.memory).max(self.atomics) + self.overhead
    }
}

/// Occupancy-derived throughput efficiency in (0, 1].
fn occupancy_efficiency(occupancy: f64) -> f64 {
    (occupancy / OCCUPANCY_KNEE).clamp(0.05, 1.0)
}

/// Models the duration of a kernel whose merged tally is `tally`, achieving
/// `occupancy`, on `config`. Returns the total and its breakdown.
pub fn kernel_time(
    config: &DeviceConfig,
    tally: &WorkTally,
    occupancy: f64,
) -> (SimTime, TimeBreakdown) {
    let eff = occupancy_efficiency(occupancy);

    // Compute pipeline: divergent instructions execute both paths (×2).
    let effective_instr = tally.instructions as f64 + tally.divergent_instructions as f64;
    let compute = config
        .peak_instr_rate()
        .scaled(eff)
        .time_for(effective_instr);

    // Memory pipeline.
    let hbm = config.hbm_bandwidth.scaled(eff);
    let memory = hbm.time_for(tally.gmem_coalesced_bytes as f64)
        + hbm
            .scaled(RANDOM_ACCESS_EFFICIENCY)
            .time_for(tally.gmem_random_bytes as f64);

    // Atomic pipeline: conflicts serialise.
    let effective_atomics =
        tally.atomics as f64 + tally.atomic_conflicts as f64 * config.atomic_contention_penalty;
    let atomics = config
        .atomic_throughput
        .scaled(eff)
        .time_for(effective_atomics);

    let breakdown = TimeBreakdown {
        compute,
        memory,
        atomics,
        overhead: SimTime::from_micros(config.launch_overhead_us),
    };
    (breakdown.total(), breakdown)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tally(instr: u64, coalesced: u64, random: u64, atomics: u64, conflicts: u64) -> WorkTally {
        WorkTally {
            instructions: instr,
            gmem_coalesced_bytes: coalesced,
            gmem_random_bytes: random,
            atomics,
            atomic_conflicts: conflicts,
            divergent_instructions: 0,
        }
    }

    #[test]
    fn empty_kernel_costs_only_overhead() {
        let c = DeviceConfig::v100();
        let (t, b) = kernel_time(&c, &WorkTally::default(), 1.0);
        assert_eq!(t, b.overhead);
        assert!((t.as_micros() - c.launch_overhead_us).abs() < 1e-9);
    }

    #[test]
    fn compute_bound_kernel_scales_with_instructions() {
        let c = DeviceConfig::v100();
        let (t1, _) = kernel_time(&c, &tally(1_000_000_000, 0, 0, 0, 0), 1.0);
        let (t2, _) = kernel_time(&c, &tally(2_000_000_000, 0, 0, 0, 0), 1.0);
        let ratio = (t2 - t1.min(t2)).as_secs() / (t1 - SimTime::from_micros(5.0)).as_secs();
        assert!((ratio - 1.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn coalesced_traffic_runs_at_hbm_speed() {
        let c = DeviceConfig::v100();
        // 90 GB at 900 GB/s is 0.1 s.
        let (_, b) = kernel_time(&c, &tally(0, 90_000_000_000, 0, 0, 0), 1.0);
        assert!((b.memory.as_secs() - 0.1).abs() < 1e-6);
    }

    #[test]
    fn random_traffic_is_8x_slower() {
        let c = DeviceConfig::v100();
        let (_, co) = kernel_time(&c, &tally(0, 1_000_000_000, 0, 0, 0), 1.0);
        let (_, ra) = kernel_time(&c, &tally(0, 0, 1_000_000_000, 0, 0), 1.0);
        let ratio = ra.memory / co.memory;
        assert!((ratio - 8.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn contention_makes_atomics_slower() {
        let c = DeviceConfig::v100();
        let (_, none) = kernel_time(&c, &tally(0, 0, 0, 1_000_000, 0), 1.0);
        let (_, all) = kernel_time(&c, &tally(0, 0, 0, 1_000_000, 1_000_000), 1.0);
        assert!(all.atomics > none.atomics * 3.0);
    }

    #[test]
    fn low_occupancy_slows_everything() {
        let c = DeviceConfig::v100();
        let w = tally(1_000_000_000, 1_000_000_000, 0, 1_000_000, 0);
        let (fast, _) = kernel_time(&c, &w, 1.0);
        let (slow, _) = kernel_time(&c, &w, 0.1);
        assert!(slow > fast * 2.0);
    }

    #[test]
    fn divergence_doubles_divergent_portion() {
        let c = DeviceConfig::v100();
        let base = tally(1_000_000_000, 0, 0, 0, 0);
        let mut div = base;
        div.divergent_instructions = 1_000_000_000; // everything divergent
        let (_, b0) = kernel_time(&c, &base, 1.0);
        let (_, b1) = kernel_time(&c, &div, 1.0);
        let ratio = b1.compute / b0.compute;
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn total_is_max_of_pipelines_plus_overhead() {
        let c = DeviceConfig::v100();
        // Memory-dominated tally: memory time ≫ compute time.
        let (t, b) = kernel_time(&c, &tally(1_000, 10_000_000_000, 0, 10, 0), 1.0);
        assert!(b.memory > b.compute);
        assert_eq!(t, b.memory + b.overhead);
    }
}
