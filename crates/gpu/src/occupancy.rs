//! Occupancy: how many warps a launch keeps resident per SM.
//!
//! Occupancy governs how well the device hides memory latency; the cost
//! model scales effective throughput by an occupancy-derived efficiency.
//! The calculator implements the standard CUDA rules restricted to the
//! limits the simulator models (threads/SM, blocks/SM); register and
//! shared-memory pressure are out of scope.

use crate::config::DeviceConfig;
use crate::launch::LaunchConfig;

/// Resident blocks per SM for a given block size.
pub fn blocks_per_sm(config: &DeviceConfig, block_threads: u32) -> u32 {
    debug_assert!(block_threads > 0 && block_threads <= config.max_threads_per_block);
    let by_threads = config.max_threads_per_sm / block_threads;
    by_threads.min(config.max_blocks_per_sm).max(1)
}

/// Theoretical occupancy of a block size: resident warps / max warps,
/// in (0, 1].
pub fn theoretical_occupancy(config: &DeviceConfig, block_threads: u32) -> f64 {
    let warps_per_block = block_threads.div_ceil(config.warp_size);
    let resident = blocks_per_sm(config, block_threads) * warps_per_block;
    (resident.min(config.max_warps_per_sm()) as f64) / config.max_warps_per_sm() as f64
}

/// Achieved occupancy of a launch: theoretical occupancy further limited by
/// a grid too small to put work on every SM (the "tail" effect on tiny
/// grids). An SM with at least one resident block still hides latency
/// reasonably well for streaming kernels, so the fill penalty uses the SM
/// count — not the total resident-block capacity — as its denominator.
pub fn achieved_occupancy(config: &DeviceConfig, cfg: LaunchConfig) -> f64 {
    let theo = theoretical_occupancy(config, cfg.block_threads);
    let fill = (cfg.grid_blocks as f64 / config.num_sms as f64).min(1.0);
    theo * fill.max(1.0 / config.num_sms as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_blocks_reach_full_occupancy() {
        let c = DeviceConfig::v100();
        // 1024-thread blocks: 2 blocks/SM × 32 warps = 64 warps = 100%.
        assert_eq!(blocks_per_sm(&c, 1024), 2);
        assert!((theoretical_occupancy(&c, 1024) - 1.0).abs() < 1e-12);
        // 256-thread blocks: 8 blocks × 8 warps = 64 warps = 100%.
        assert!((theoretical_occupancy(&c, 256) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn small_blocks_limited_by_block_slots() {
        let c = DeviceConfig::v100();
        // 32-thread blocks: block-slot limit (32) × 1 warp = 32 of 64 warps.
        assert_eq!(blocks_per_sm(&c, 32), 32);
        assert!((theoretical_occupancy(&c, 32) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tiny_grids_cannot_fill_the_device() {
        let c = DeviceConfig::v100();
        let small = achieved_occupancy(
            &c,
            LaunchConfig {
                grid_blocks: 8,
                block_threads: 256,
            },
        );
        let big = achieved_occupancy(
            &c,
            LaunchConfig {
                grid_blocks: 8000,
                block_threads: 256,
            },
        );
        assert!(small < big);
        assert!((big - 1.0).abs() < 1e-12);
        // 8 of 80 SMs busy.
        assert!((small - 0.1).abs() < 1e-12);
    }

    #[test]
    fn one_block_per_sm_reaches_full_fill() {
        let c = DeviceConfig::v100();
        let o = achieved_occupancy(
            &c,
            LaunchConfig {
                grid_blocks: 80,
                block_threads: 256,
            },
        );
        assert!((o - 1.0).abs() < 1e-12);
    }

    #[test]
    fn achieved_caps_at_theoretical() {
        let c = DeviceConfig::v100();
        for bt in [32u32, 64, 128, 256, 512, 1024] {
            let theo = theoretical_occupancy(&c, bt);
            let ach = achieved_occupancy(
                &c,
                LaunchConfig {
                    grid_blocks: 1_000_000,
                    block_threads: bt,
                },
            );
            assert!(ach <= theo + 1e-12, "bt {bt}");
        }
    }
}
