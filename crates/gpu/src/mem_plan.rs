//! Deterministic memory-pressure injection for the counting phase.
//!
//! A [`MemPlan`] is the device-memory twin of the network layer's
//! `FaultPlan`: a *pure function* from a seed and a pressure coordinate
//! — `(rank)` for distinct-count underestimates, `(rank, attempt)` for
//! allocation failures — to a pressure decision, built on the stateless
//! [`dedukt_sim::rng::unit_from_coords`] draw. Because the plan carries
//! no mutable state, every engine (threaded CPU baseline, both GPU
//! pipelines) derives **identical** pressure schedules without any
//! coordination, and a regrow retry draws a fresh, reproducible verdict
//! simply by bumping the attempt coordinate.
//!
//! Two pressure kinds are modelled (DESIGN.md §8):
//!
//! * **Distinct-count underestimate** — a rank's table is sized from
//!   [`MemSpec::shrink_factor`] × the true expected load instead of the
//!   exact count, forcing the open-addressing table to fill up and
//!   exercise the grow/spill recovery.
//! * **Allocation failure** — a grow-and-rehash attempt is denied even
//!   though the simulated HBM could hold it, forcing the spill path
//!   (and, once the spill budget is exhausted, the clean
//!   `RunError::DeviceOom` unwind).

use dedukt_sim::rng::unit_from_coords;

/// Domain-separation salts so the two pressure streams never alias
/// (and never alias the network fault salts).
const SALT_ESTIMATE: u64 = 0x4D45_4D01;
const SALT_ALLOC: u64 = 0x4D45_4D02;

/// Pressure rates and spill policy. Parsed from `--mem-spec`
/// (`under=0.5,shrink=0.25,afail=0.25,spill=1048576`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemSpec {
    /// Probability a rank's distinct-count estimate comes in low.
    pub underestimate_rate: f64,
    /// Factor applied to an underestimating rank's expected load when
    /// sizing its count table, in `(0, 1]`.
    pub shrink_factor: f64,
    /// Probability a grow-and-rehash allocation attempt is denied.
    pub alloc_fail_rate: f64,
    /// Most k-mer instances one rank may park on the host spill list
    /// before the run fails with `RunError::DeviceOom`.
    pub spill_limit: u64,
}

impl Default for MemSpec {
    /// Moderate default rates so `--mem-seed` alone exercises both the
    /// regrow and the spill path on a handful of ranks.
    fn default() -> MemSpec {
        MemSpec {
            underestimate_rate: 0.5,
            shrink_factor: 0.25,
            alloc_fail_rate: 0.25,
            spill_limit: 1 << 20,
        }
    }
}

impl MemSpec {
    /// The no-pressure spec: exact sizing, allocations always succeed,
    /// unbounded spill. Runs under this spec are bit-identical to a
    /// plan-free world (pinned by the zero-pressure regression test).
    pub fn none() -> MemSpec {
        MemSpec {
            underestimate_rate: 0.0,
            shrink_factor: 1.0,
            alloc_fail_rate: 0.0,
            spill_limit: u64::MAX,
        }
    }

    /// Parses a `key=value` comma list. Unknown keys and unparseable
    /// values are errors; range checks live in [`MemSpec::validate`] so
    /// the CLI surfaces them through `ConfigError` like every other
    /// configuration problem.
    pub fn parse(s: &str) -> Result<MemSpec, String> {
        let mut spec = MemSpec::default();
        for part in s.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("mem spec entry `{}` is not key=value", part.trim()))?;
            let key = key.trim();
            let value = value.trim();
            let parse_f64 = || {
                value
                    .parse::<f64>()
                    .map_err(|_| format!("mem spec {key}=`{value}` is not a number"))
            };
            match key {
                "under" => spec.underestimate_rate = parse_f64()?,
                "shrink" => spec.shrink_factor = parse_f64()?,
                "afail" => spec.alloc_fail_rate = parse_f64()?,
                "spill" => {
                    spec.spill_limit = value
                        .parse::<u64>()
                        .map_err(|_| format!("mem spec spill=`{value}` is not an integer"))?
                }
                _ => {
                    return Err(format!(
                        "unknown mem spec key `{key}` (expected under/shrink/afail/spill)"
                    ))
                }
            }
        }
        Ok(spec)
    }

    /// Range checks, in `FaultSpec::validate` style: rates in [0, 1],
    /// shrink factor in (0, 1].
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [
            ("under", self.underestimate_rate),
            ("afail", self.alloc_fail_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) || !rate.is_finite() {
                return Err(format!("mem rate {name}={rate} must be in [0, 1]"));
            }
        }
        if !self.shrink_factor.is_finite() || self.shrink_factor <= 0.0 || self.shrink_factor > 1.0
        {
            return Err(format!(
                "mem shrink factor shrink={} must be in (0, 1]",
                self.shrink_factor
            ));
        }
        Ok(())
    }

    /// Is this spec semantically empty — valid, but incapable of ever
    /// injecting pressure? No underestimates and no injected allocation
    /// failures means the grow/spill machinery never fires off the plan
    /// (the spill limit only bounds plan-independent pressure, which the
    /// caller checks separately). Such plans are normalized away before a
    /// run so both engines treat `--mem-spec under=0,afail=0` exactly
    /// like an absent plan.
    pub fn is_noop(&self) -> bool {
        (self.underestimate_rate == 0.0 || self.shrink_factor == 1.0) && self.alloc_fail_rate == 0.0
    }
}

/// A seeded, deterministic memory-pressure schedule. Cloning is cheap
/// (a few words); every engine and every grow attempt consult the same
/// plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemPlan {
    seed: u64,
    spec: MemSpec,
}

impl MemPlan {
    /// A plan drawing every pressure decision from `seed` under `spec`.
    pub fn new(seed: u64, spec: MemSpec) -> MemPlan {
        MemPlan { seed, spec }
    }

    /// The plan's rates and spill policy.
    pub fn spec(&self) -> &MemSpec {
        &self.spec
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// One-line summary of the plan for run journals and reports, e.g.
    /// `seed=7 under=0.5 shrink=0.25 afail=0.25 spill=1048576`.
    pub fn journal_label(&self) -> String {
        format!(
            "seed={} under={} shrink={} afail={} spill={}",
            self.seed,
            self.spec.underestimate_rate,
            self.spec.shrink_factor,
            self.spec.alloc_fail_rate,
            self.spec.spill_limit
        )
    }

    /// Uniform `[0, 1)` draw at a pressure coordinate.
    fn draw(&self, salt: u64, coords: &[u64]) -> f64 {
        unit_from_coords(self.seed ^ salt, coords)
    }

    /// Does `rank`'s distinct-count estimate come in low? Stateless:
    /// every evaluation at the same coordinate returns the same verdict,
    /// on any engine.
    pub fn underestimates(&self, rank: usize) -> bool {
        self.spec.underestimate_rate > 0.0
            && self.draw(SALT_ESTIMATE, &[rank as u64]) < self.spec.underestimate_rate
    }

    /// Factor applied to `rank`'s expected load when sizing its count
    /// table: [`MemSpec::shrink_factor`] when the rank underestimates,
    /// 1.0 otherwise.
    pub fn estimate_factor(&self, rank: usize) -> f64 {
        if self.underestimates(rank) {
            self.spec.shrink_factor
        } else {
            1.0
        }
    }

    /// Is grow attempt `attempt` (0 = first regrow) on `rank` denied by
    /// injected pressure? Real HBM exhaustion is checked separately
    /// against the device budget; this draw models transient allocator
    /// failure under fragmentation.
    pub fn alloc_fails(&self, rank: usize, attempt: u64) -> bool {
        self.spec.alloc_fail_rate > 0.0
            && self.draw(SALT_ALLOC, &[rank as u64, attempt]) < self.spec.alloc_fail_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_every_key() {
        let spec = MemSpec::parse("under=0.3, shrink=0.5, afail=0.1, spill=4096").unwrap();
        assert_eq!(spec.underestimate_rate, 0.3);
        assert_eq!(spec.shrink_factor, 0.5);
        assert_eq!(spec.alloc_fail_rate, 0.1);
        assert_eq!(spec.spill_limit, 4096);
        spec.validate().unwrap();
    }

    #[test]
    fn parse_partial_spec_keeps_defaults() {
        let spec = MemSpec::parse("under=0.9").unwrap();
        assert_eq!(spec.underestimate_rate, 0.9);
        assert_eq!(spec.shrink_factor, MemSpec::default().shrink_factor);
        assert_eq!(spec.spill_limit, MemSpec::default().spill_limit);
    }

    #[test]
    fn parse_rejects_unknown_keys_and_garbage() {
        assert!(MemSpec::parse("bogus=1")
            .unwrap_err()
            .contains("unknown mem spec key"));
        assert!(MemSpec::parse("under=abc")
            .unwrap_err()
            .contains("not a number"));
        assert!(MemSpec::parse("spill=1.5")
            .unwrap_err()
            .contains("not an integer"));
        assert!(MemSpec::parse("under").unwrap_err().contains("key=value"));
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let s = MemSpec {
            underestimate_rate: 1.5,
            ..MemSpec::default()
        };
        assert!(s.validate().unwrap_err().contains("must be in [0, 1]"));
        let s = MemSpec {
            alloc_fail_rate: -0.1,
            ..MemSpec::default()
        };
        assert!(s.validate().unwrap_err().contains("must be in [0, 1]"));
        let s = MemSpec {
            shrink_factor: 0.0,
            ..MemSpec::default()
        };
        assert!(s.validate().unwrap_err().contains("(0, 1]"));
        let s = MemSpec {
            shrink_factor: 1.5,
            ..MemSpec::default()
        };
        assert!(s.validate().unwrap_err().contains("(0, 1]"));
        MemSpec::default().validate().unwrap();
        MemSpec::none().validate().unwrap();
    }

    #[test]
    fn draws_are_deterministic_and_attempt_fresh() {
        let plan = MemPlan::new(42, MemSpec::parse("under=0.5,afail=0.5").unwrap());
        for rank in 0..16 {
            assert_eq!(plan.underestimates(rank), plan.underestimates(rank));
            assert_eq!(plan.estimate_factor(rank), plan.estimate_factor(rank));
            for attempt in 0..8u64 {
                assert_eq!(
                    plan.alloc_fails(rank, attempt),
                    plan.alloc_fails(rank, attempt)
                );
            }
        }
        // Across 16 ranks × 8 attempts at afail=0.5, some rank must see
        // a different verdict on attempt 1 than on attempt 0.
        let differs = (0..16usize).any(|r| plan.alloc_fails(r, 0) != plan.alloc_fails(r, 1));
        assert!(differs, "attempts should draw fresh verdicts");
    }

    #[test]
    fn zero_rate_plan_never_pressures() {
        let plan = MemPlan::new(7, MemSpec::none());
        for rank in 0..64 {
            assert!(!plan.underestimates(rank));
            assert_eq!(plan.estimate_factor(rank), 1.0);
            for attempt in 0..8u64 {
                assert!(!plan.alloc_fails(rank, attempt));
            }
        }
    }

    #[test]
    fn pressure_distribution_tracks_rates() {
        let plan = MemPlan::new(1234, MemSpec::parse("under=0.25,afail=0.25").unwrap());
        let n = 40_000usize;
        let under = (0..n).filter(|&r| plan.underestimates(r)).count();
        let frac = under as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "underestimated {frac}");
        let fails = (0..n).filter(|&a| plan.alloc_fails(3, a as u64)).count();
        let frac = fails as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "alloc-failed {frac}");
        assert!((0..n).all(|r| {
            let f = plan.estimate_factor(r);
            f == 1.0 || f == 0.25
        }));
    }

    #[test]
    fn noop_specs_are_detected() {
        assert!(!MemSpec::default().is_noop());
        assert!(MemSpec::none().is_noop());
        assert!(MemSpec::parse("under=0,afail=0").unwrap().is_noop());
        // shrink=1 makes underestimates inert.
        assert!(MemSpec::parse("under=0.5,shrink=1,afail=0")
            .unwrap()
            .is_noop());
        assert!(!MemSpec::parse("under=0.5,afail=0").unwrap().is_noop());
        assert!(!MemSpec::parse("under=0,afail=0.5").unwrap().is_noop());
    }

    #[test]
    fn underestimate_and_alloc_streams_are_independent() {
        // Same coordinates, different salts: the two decision streams
        // must not mirror each other.
        let plan = MemPlan::new(99, MemSpec::parse("under=0.5,afail=0.5").unwrap());
        let mirrored = (0..256usize).all(|r| plan.underestimates(r) == plan.alloc_fails(r, 0));
        assert!(!mirrored, "salt separation failed");
    }
}
