//! Simulated device memory.
//!
//! A [`Device`] owns an allocation budget equal to the configured HBM
//! capacity (16 GB for the V100 preset). Buffers are real host memory, but
//! every allocation is charged against the device budget and refused with
//! [`OomError`] when it would not fit — reproducing the constraint that
//! motivates the paper's distributed approach in the first place ("GPUs
//! generally have smaller memories compared to CPUs", §I).
//!
//! Two buffer flavours exist: [`DeviceBuffer`] for exclusive or
//! block-partitioned access, and [`AtomicBuffer`]/[`AtomicBuffer32`] for
//! structures that concurrent thread blocks genuinely share (the outgoing
//! partition buffer of Fig. 2, the counting hash table of §III-B3).

use crate::config::DeviceConfig;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Allocation failure: the request would exceed device memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OomError {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes currently allocated.
    pub in_use: u64,
    /// Device capacity in bytes.
    pub capacity: u64,
}

impl fmt::Display for OomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "device out of memory: requested {} B with {} B of {} B in use",
            self.requested, self.in_use, self.capacity
        )
    }
}

impl std::error::Error for OomError {}

#[derive(Debug)]
struct DeviceInner {
    config: DeviceConfig,
    allocated: AtomicU64,
    peak: AtomicU64,
}

impl DeviceInner {
    fn try_reserve(&self, bytes: u64) -> Result<(), OomError> {
        // Optimistic add; roll back on overshoot.
        let prev = self.allocated.fetch_add(bytes, Ordering::Relaxed);
        let now = prev + bytes;
        if now > self.config.memory_bytes {
            self.allocated.fetch_sub(bytes, Ordering::Relaxed);
            return Err(OomError {
                requested: bytes,
                in_use: prev,
                capacity: self.config.memory_bytes,
            });
        }
        self.peak.fetch_max(now, Ordering::Relaxed);
        Ok(())
    }

    fn release(&self, bytes: u64) {
        self.allocated.fetch_sub(bytes, Ordering::Relaxed);
    }
}

/// A simulated GPU: a configuration plus a memory budget. Cheap to clone
/// (clones share the budget).
#[derive(Clone, Debug)]
pub struct Device {
    inner: Arc<DeviceInner>,
}

impl Device {
    /// Creates a device with the given configuration.
    pub fn new(config: DeviceConfig) -> Device {
        Device {
            inner: Arc::new(DeviceInner {
                config,
                allocated: AtomicU64::new(0),
                peak: AtomicU64::new(0),
            }),
        }
    }

    /// A V100 device (the Summit GPU).
    pub fn v100() -> Device {
        Device::new(DeviceConfig::v100())
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.inner.config
    }

    /// Bytes currently allocated.
    pub fn allocated_bytes(&self) -> u64 {
        self.inner.allocated.load(Ordering::Relaxed)
    }

    /// High-water mark of allocated bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.inner.peak.load(Ordering::Relaxed)
    }

    /// Allocates a zero-initialised buffer of `len` elements.
    pub fn alloc_zeroed<T: Default + Clone>(
        &self,
        len: usize,
    ) -> Result<DeviceBuffer<T>, OomError> {
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        self.inner.try_reserve(bytes)?;
        Ok(DeviceBuffer {
            data: vec![T::default(); len],
            bytes,
            device: Arc::clone(&self.inner),
        })
    }

    /// Allocates a buffer initialised from a host slice (the functional
    /// half of a host→device copy; the *cost* of the copy is charged
    /// separately via [`crate::transfer`]).
    pub fn alloc_from_slice<T: Clone>(&self, src: &[T]) -> Result<DeviceBuffer<T>, OomError> {
        let bytes = std::mem::size_of_val(src) as u64;
        self.inner.try_reserve(bytes)?;
        Ok(DeviceBuffer {
            data: src.to_vec(),
            bytes,
            device: Arc::clone(&self.inner),
        })
    }

    /// Allocates a zeroed buffer of `len` 64-bit atomics.
    pub fn alloc_atomic(&self, len: usize) -> Result<AtomicBuffer, OomError> {
        let bytes = (len * 8) as u64;
        self.inner.try_reserve(bytes)?;
        let mut v = Vec::with_capacity(len);
        v.resize_with(len, || AtomicU64::new(0));
        Ok(AtomicBuffer {
            data: v,
            bytes,
            device: Arc::clone(&self.inner),
        })
    }

    /// Allocates a zeroed buffer of `len` 32-bit atomics.
    pub fn alloc_atomic32(&self, len: usize) -> Result<AtomicBuffer32, OomError> {
        let bytes = (len * 4) as u64;
        self.inner.try_reserve(bytes)?;
        let mut v = Vec::with_capacity(len);
        v.resize_with(len, || AtomicU32::new(0));
        Ok(AtomicBuffer32 {
            data: v,
            bytes,
            device: Arc::clone(&self.inner),
        })
    }

    /// Allocates a zeroed buffer of `len` 128-bit atomically updated slots
    /// (wide k-mer keys). Charged at 16 B per slot.
    pub fn alloc_atomic128(&self, len: usize) -> Result<AtomicBuffer128, OomError> {
        let bytes = (len * 16) as u64;
        self.inner.try_reserve(bytes)?;
        let mut v = Vec::with_capacity(len);
        v.resize_with(len, || Mutex::new(0u128));
        Ok(AtomicBuffer128 {
            data: v,
            bytes,
            device: Arc::clone(&self.inner),
        })
    }
}

/// A device-resident typed buffer with exclusive (or block-partitioned)
/// access. Dereferences to a slice.
#[derive(Debug)]
pub struct DeviceBuffer<T> {
    data: Vec<T>,
    bytes: u64,
    device: Arc<DeviceInner>,
}

impl<T> DeviceBuffer<T> {
    /// Moves the contents back to the host, releasing device memory.
    /// (The transfer *cost* is charged separately via [`crate::transfer`].)
    pub fn into_host(mut self) -> Vec<T> {
        std::mem::take(&mut self.data)
        // Drop impl releases the byte accounting.
    }
}

impl<T> Deref for DeviceBuffer<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.data
    }
}

impl<T> DerefMut for DeviceBuffer<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        self.device.release(self.bytes);
    }
}

/// A device buffer of 64-bit atomics shared across concurrently executing
/// thread blocks.
#[derive(Debug)]
pub struct AtomicBuffer {
    data: Vec<AtomicU64>,
    bytes: u64,
    device: Arc<DeviceInner>,
}

impl AtomicBuffer {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Relaxed load.
    #[inline]
    pub fn load(&self, i: usize) -> u64 {
        self.data[i].load(Ordering::Relaxed)
    }

    /// Relaxed store.
    #[inline]
    pub fn store(&self, i: usize, v: u64) {
        self.data[i].store(v, Ordering::Relaxed);
    }

    /// Atomic add, returning the previous value (CUDA `atomicAdd`).
    #[inline]
    pub fn fetch_add(&self, i: usize, v: u64) -> u64 {
        self.data[i].fetch_add(v, Ordering::Relaxed)
    }

    /// Atomic compare-and-swap (CUDA `atomicCAS`): if the slot holds
    /// `current`, replaces it with `new`. Returns the value observed before
    /// the operation (equal to `current` on success).
    #[inline]
    pub fn compare_and_swap(&self, i: usize, current: u64, new: u64) -> u64 {
        match self.data[i].compare_exchange(current, new, Ordering::AcqRel, Ordering::Acquire) {
            Ok(prev) => prev,
            Err(prev) => prev,
        }
    }

    /// Copies the current contents to a host `Vec`.
    pub fn snapshot(&self) -> Vec<u64> {
        self.data
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect()
    }
}

impl Drop for AtomicBuffer {
    fn drop(&mut self) {
        self.device.release(self.bytes);
    }
}

/// A device buffer of 32-bit atomics (counters, per-slot k-mer counts).
#[derive(Debug)]
pub struct AtomicBuffer32 {
    data: Vec<AtomicU32>,
    bytes: u64,
    device: Arc<DeviceInner>,
}

impl AtomicBuffer32 {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Relaxed load.
    #[inline]
    pub fn load(&self, i: usize) -> u32 {
        self.data[i].load(Ordering::Relaxed)
    }

    /// Relaxed store.
    #[inline]
    pub fn store(&self, i: usize, v: u32) {
        self.data[i].store(v, Ordering::Relaxed);
    }

    /// Atomic add, returning the previous value.
    #[inline]
    pub fn fetch_add(&self, i: usize, v: u32) -> u32 {
        self.data[i].fetch_add(v, Ordering::Relaxed)
    }

    /// Copies the current contents to a host `Vec`.
    pub fn snapshot(&self) -> Vec<u32> {
        self.data
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect()
    }
}

impl Drop for AtomicBuffer32 {
    fn drop(&mut self) {
        self.device.release(self.bytes);
    }
}

/// A device buffer of 128-bit slots with atomic compare-and-swap — the
/// key array of a wide-k (u128) counting table.
///
/// Real GPUs CAS 128-bit values with paired 64-bit CAS or
/// `atomicCAS` on `ulonglong2` via vectorized loads; the host simulation
/// uses one mutex per slot, which is linearizable and therefore a sound
/// stand-in for the device primitive. Charged at 16 B per slot, exactly
/// the device footprint of the key array.
#[derive(Debug)]
pub struct AtomicBuffer128 {
    data: Vec<Mutex<u128>>,
    bytes: u64,
    device: Arc<DeviceInner>,
}

impl AtomicBuffer128 {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Load.
    #[inline]
    pub fn load(&self, i: usize) -> u128 {
        *self.data[i].lock().expect("poisoned device slot")
    }

    /// Store.
    #[inline]
    pub fn store(&self, i: usize, v: u128) {
        *self.data[i].lock().expect("poisoned device slot") = v;
    }

    /// Atomic compare-and-swap (CUDA `atomicCAS` semantics): if the slot
    /// holds `current`, replaces it with `new`. Returns the value observed
    /// before the operation (equal to `current` on success).
    #[inline]
    pub fn compare_and_swap(&self, i: usize, current: u128, new: u128) -> u128 {
        let mut slot = self.data[i].lock().expect("poisoned device slot");
        let prev = *slot;
        if prev == current {
            *slot = new;
        }
        prev
    }

    /// Copies the current contents to a host `Vec`.
    pub fn snapshot(&self) -> Vec<u128> {
        (0..self.data.len()).map(|i| self.load(i)).collect()
    }
}

impl Drop for AtomicBuffer128 {
    fn drop(&mut self) {
        self.device.release(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_device(bytes: u64) -> Device {
        let mut cfg = DeviceConfig::v100();
        cfg.memory_bytes = bytes;
        Device::new(cfg)
    }

    #[test]
    fn allocation_accounting() {
        let d = small_device(1024);
        let b = d.alloc_zeroed::<u64>(64).unwrap(); // 512 B
        assert_eq!(d.allocated_bytes(), 512);
        drop(b);
        assert_eq!(d.allocated_bytes(), 0);
        assert_eq!(d.peak_bytes(), 512);
    }

    #[test]
    fn oom_is_refused_and_rolled_back() {
        let d = small_device(100);
        let err = d.alloc_zeroed::<u8>(200).unwrap_err();
        assert_eq!(err.requested, 200);
        assert_eq!(err.capacity, 100);
        assert_eq!(d.allocated_bytes(), 0); // rollback happened
                                            // A fitting allocation still works afterwards.
        assert!(d.alloc_zeroed::<u8>(100).is_ok());
    }

    #[test]
    fn from_slice_roundtrip() {
        let d = small_device(4096);
        let buf = d.alloc_from_slice(&[1u32, 2, 3]).unwrap();
        assert_eq!(&*buf, &[1, 2, 3]);
        assert_eq!(buf.into_host(), vec![1, 2, 3]);
        assert_eq!(d.allocated_bytes(), 0);
    }

    #[test]
    fn atomic_buffer_cas_and_add() {
        let d = small_device(4096);
        let a = d.alloc_atomic(4).unwrap();
        assert_eq!(a.compare_and_swap(0, 0, 7), 0); // success: saw 0
        assert_eq!(a.compare_and_swap(0, 0, 9), 7); // failure: saw 7
        assert_eq!(a.load(0), 7);
        assert_eq!(a.fetch_add(1, 5), 0);
        assert_eq!(a.fetch_add(1, 5), 5);
        assert_eq!(a.snapshot(), vec![7, 10, 0, 0]);
    }

    #[test]
    fn atomic32_counter() {
        let d = small_device(4096);
        let a = d.alloc_atomic32(2).unwrap();
        a.fetch_add(0, 3);
        a.store(1, 9);
        assert_eq!(a.snapshot(), vec![3, 9]);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn concurrent_atomic_adds_are_exact() {
        let d = small_device(1 << 20);
        let a = std::sync::Arc::new(d.alloc_atomic(1).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let a = std::sync::Arc::clone(&a);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        a.fetch_add(0, 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(a.load(0), 40_000);
    }

    #[test]
    fn atomic128_cas_and_accounting() {
        let d = small_device(4096);
        let a = d.alloc_atomic128(4).unwrap();
        assert_eq!(d.allocated_bytes(), 64); // 16 B per slot
        let big = (7u128 << 64) | 3;
        assert_eq!(a.compare_and_swap(0, 0, big), 0); // success: saw 0
        assert_eq!(a.compare_and_swap(0, 0, 9), big); // failure: saw big
        assert_eq!(a.load(0), big);
        a.store(1, 11);
        assert_eq!(a.snapshot(), vec![big, 11, 0, 0]);
        drop(a);
        assert_eq!(d.allocated_bytes(), 0);
    }

    #[test]
    fn concurrent_atomic128_cas_is_exact() {
        let d = small_device(1 << 20);
        let a = std::sync::Arc::new(d.alloc_atomic128(1).unwrap());
        let winners = std::sync::Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (1..=8u128)
            .map(|t| {
                let a = std::sync::Arc::clone(&a);
                let winners = std::sync::Arc::clone(&winners);
                std::thread::spawn(move || {
                    if a.compare_and_swap(0, 0, t << 64) == 0 {
                        winners.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Exactly one CAS on the empty slot may succeed.
        assert_eq!(winners.load(Ordering::Relaxed), 1);
        assert_ne!(a.load(0), 0);
    }

    #[test]
    fn v100_capacity_enforced() {
        let d = Device::v100();
        // 17 GB must not fit on a 16 GB device.
        assert!(d.alloc_zeroed::<u8>(17 * (1 << 30)).is_err());
    }
}
