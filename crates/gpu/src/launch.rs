//! Kernel launch API.
//!
//! A kernel is a closure invoked once per *thread block*; inside, it
//! iterates its threads. Blocks execute concurrently on a rayon pool — so
//! anything shared between blocks must live in an
//! [`crate::memory::AtomicBuffer`], exactly mirroring the CUDA rules the
//! paper's kernels play by ("as all the GPU threads concurrently update
//! this buffer, the update operation is performed atomically", §III-B1).
//!
//! Kernels report the work they perform through the block-local
//! [`WorkTally`] (merged across blocks after the launch); the cost model
//! converts the merged tally into a simulated kernel duration.

use crate::cost::{self, TimeBreakdown};
use crate::memory::Device;
use crate::occupancy;
use dedukt_sim::SimTime;
use rayon::prelude::*;

/// Grid and block dimensions for a launch (1-D, which is all the paper's
/// kernels need).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of thread blocks in the grid.
    pub grid_blocks: u32,
    /// Threads per block.
    pub block_threads: u32,
}

impl LaunchConfig {
    /// A launch covering at least `total_threads` threads with the given
    /// block size.
    pub fn cover(total_threads: usize, block_threads: u32) -> LaunchConfig {
        assert!(block_threads > 0);
        let grid_blocks = total_threads.div_ceil(block_threads as usize).max(1) as u32;
        LaunchConfig {
            grid_blocks,
            block_threads,
        }
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> usize {
        self.grid_blocks as usize * self.block_threads as usize
    }
}

/// Work performed by a kernel, tallied per block and merged after the
/// launch. All quantities are *logical* (what the real GPU would do), not
/// host-side measurements.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkTally {
    /// Simple arithmetic/logic instructions executed.
    pub instructions: u64,
    /// Global-memory bytes moved with coalesced (unit-stride per warp)
    /// access patterns.
    pub gmem_coalesced_bytes: u64,
    /// Global-memory bytes moved with effectively random access patterns
    /// (each access its own 32-byte transaction).
    pub gmem_random_bytes: u64,
    /// Global atomic operations issued.
    pub atomics: u64,
    /// Expected number of *conflicting* atomics (same address, same time) —
    /// a hint the kernel derives from its data distribution, used by the
    /// contention model.
    pub atomic_conflicts: u64,
    /// Instructions executed under warp divergence (both sides of a
    /// branch serialised).
    pub divergent_instructions: u64,
}

impl WorkTally {
    /// Elementwise sum of two tallies.
    pub fn merge(mut self, other: &WorkTally) -> WorkTally {
        self.instructions += other.instructions;
        self.gmem_coalesced_bytes += other.gmem_coalesced_bytes;
        self.gmem_random_bytes += other.gmem_random_bytes;
        self.atomics += other.atomics;
        self.atomic_conflicts += other.atomic_conflicts;
        self.divergent_instructions += other.divergent_instructions;
        self
    }
}

/// Per-thread coordinates handed to kernel bodies.
#[derive(Clone, Copy, Debug)]
pub struct ThreadCtx {
    /// Block index within the grid.
    pub block: u32,
    /// Thread index within the block.
    pub thread: u32,
    /// Threads per block.
    pub block_dim: u32,
    /// Blocks in the grid.
    pub grid_dim: u32,
}

impl ThreadCtx {
    /// Flat global thread id (`block * blockDim + thread`).
    #[inline]
    pub fn global_id(&self) -> usize {
        self.block as usize * self.block_dim as usize + self.thread as usize
    }

    /// Warp index within the block.
    #[inline]
    pub fn warp(&self) -> u32 {
        self.thread / 32
    }

    /// Lane index within the warp.
    #[inline]
    pub fn lane(&self) -> u32 {
        self.thread % 32
    }
}

/// Block-level execution context: thread iteration plus the block-local
/// work tally.
pub struct BlockCtx {
    /// Block index within the grid.
    pub block: u32,
    /// Launch dimensions.
    pub cfg: LaunchConfig,
    /// Block-local work tally (merged across blocks after the launch).
    pub tally: WorkTally,
}

impl BlockCtx {
    /// Iterates this block's threads.
    pub fn threads(&self) -> impl Iterator<Item = ThreadCtx> {
        let block = self.block;
        let cfg = self.cfg;
        (0..cfg.block_threads).map(move |thread| ThreadCtx {
            block,
            thread,
            block_dim: cfg.block_threads,
            grid_dim: cfg.grid_blocks,
        })
    }

    /// Records `n` simple instructions.
    #[inline]
    pub fn instr(&mut self, n: u64) {
        self.tally.instructions += n;
    }

    /// Records a coalesced global-memory access of `bytes`.
    #[inline]
    pub fn gmem_coalesced(&mut self, bytes: u64) {
        self.tally.gmem_coalesced_bytes += bytes;
    }

    /// Records a random-access global-memory access of `bytes`.
    #[inline]
    pub fn gmem_random(&mut self, bytes: u64) {
        self.tally.gmem_random_bytes += bytes;
    }

    /// Records `n` global atomics, of which `conflicts` are expected to
    /// collide with concurrent updates to the same address.
    #[inline]
    pub fn atomic(&mut self, n: u64, conflicts: u64) {
        self.tally.atomics += n;
        self.tally.atomic_conflicts += conflicts.min(n);
    }

    /// Records `n` instructions executed under warp divergence.
    #[inline]
    pub fn divergent(&mut self, n: u64) {
        self.tally.instructions += n;
        self.tally.divergent_instructions += n;
    }
}

/// Everything known about a completed launch.
#[derive(Clone, Debug)]
pub struct KernelReport {
    /// Kernel name (for reports and traces).
    pub name: String,
    /// Launch dimensions used.
    pub cfg: LaunchConfig,
    /// Merged work tally.
    pub tally: WorkTally,
    /// Achieved occupancy in [0, 1].
    pub occupancy: f64,
    /// Simulated duration, including launch overhead.
    pub time: SimTime,
    /// Component times (compute / memory / atomics) behind `time`.
    pub breakdown: TimeBreakdown,
}

impl Device {
    /// Launches `kernel` over `cfg`, executing blocks in parallel, and
    /// returns the merged work tally with its simulated duration.
    ///
    /// The closure runs once per block and must iterate
    /// [`BlockCtx::threads`] itself (this is also where real CUDA kernels
    /// get their grid-stride loops).
    pub fn launch<F>(&self, name: &str, cfg: LaunchConfig, kernel: F) -> KernelReport
    where
        F: Fn(&mut BlockCtx) + Sync,
    {
        assert!(cfg.grid_blocks > 0 && cfg.block_threads > 0, "empty launch");
        assert!(
            cfg.block_threads <= self.config().max_threads_per_block,
            "block of {} exceeds device limit {}",
            cfg.block_threads,
            self.config().max_threads_per_block
        );
        let tally = (0..cfg.grid_blocks)
            .into_par_iter()
            .map(|block| {
                let mut ctx = BlockCtx {
                    block,
                    cfg,
                    tally: WorkTally::default(),
                };
                kernel(&mut ctx);
                ctx.tally
            })
            .reduce(WorkTally::default, |a, b| a.merge(&b));

        let occupancy = occupancy::achieved_occupancy(self.config(), cfg);
        let (time, breakdown) = cost::kernel_time(self.config(), &tally, occupancy);
        KernelReport {
            name: name.to_string(),
            cfg,
            tally,
            occupancy,
            time,
            breakdown,
        }
    }

    /// Like [`Device::launch`], but each block also produces a value;
    /// returns the report plus all block outputs in block order.
    ///
    /// This is how the pipelines' parse kernels hand their per-block
    /// partition buffers back: real CUDA kernels write them to device
    /// global memory, which the simulator represents as the returned
    /// values. The *cost* of those writes must still be tallied by the
    /// kernel body.
    pub fn launch_map<R, F>(
        &self,
        name: &str,
        cfg: LaunchConfig,
        kernel: F,
    ) -> (KernelReport, Vec<R>)
    where
        R: Send,
        F: Fn(&mut BlockCtx) -> R + Sync,
    {
        assert!(cfg.grid_blocks > 0 && cfg.block_threads > 0, "empty launch");
        assert!(
            cfg.block_threads <= self.config().max_threads_per_block,
            "block of {} exceeds device limit {}",
            cfg.block_threads,
            self.config().max_threads_per_block
        );
        let results: Vec<(WorkTally, R)> = (0..cfg.grid_blocks)
            .into_par_iter()
            .map(|block| {
                let mut ctx = BlockCtx {
                    block,
                    cfg,
                    tally: WorkTally::default(),
                };
                let out = kernel(&mut ctx);
                (ctx.tally, out)
            })
            .collect();
        let mut tally = WorkTally::default();
        let mut outputs = Vec::with_capacity(results.len());
        for (t, out) in results {
            tally = tally.merge(&t);
            outputs.push(out);
        }
        let occupancy = occupancy::achieved_occupancy(self.config(), cfg);
        let (time, breakdown) = cost::kernel_time(self.config(), &tally, occupancy);
        (
            KernelReport {
                name: name.to_string(),
                cfg,
                tally,
                occupancy,
                time,
                breakdown,
            },
            outputs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cover_rounds_up() {
        let c = LaunchConfig::cover(1000, 256);
        assert_eq!(c.grid_blocks, 4);
        assert_eq!(c.total_threads(), 1024);
        assert_eq!(LaunchConfig::cover(0, 128).grid_blocks, 1);
    }

    #[test]
    fn thread_coordinates() {
        let t = ThreadCtx {
            block: 3,
            thread: 70,
            block_dim: 256,
            grid_dim: 8,
        };
        assert_eq!(t.global_id(), 3 * 256 + 70);
        assert_eq!(t.warp(), 2);
        assert_eq!(t.lane(), 6);
    }

    #[test]
    fn launch_runs_every_thread_exactly_once() {
        let d = Device::v100();
        let cfg = LaunchConfig {
            grid_blocks: 7,
            block_threads: 64,
        };
        let hits = d.alloc_atomic(cfg.total_threads()).unwrap();
        d.launch("touch", cfg, |b| {
            for t in b.threads() {
                hits.fetch_add(t.global_id(), 1);
            }
        });
        assert!(hits.snapshot().iter().all(|&h| h == 1));
    }

    #[test]
    fn tallies_merge_across_blocks() {
        let d = Device::v100();
        let cfg = LaunchConfig {
            grid_blocks: 10,
            block_threads: 32,
        };
        let r = d.launch("tally", cfg, |b| {
            for _t in b.threads() {
                b.instr(3);
                b.gmem_coalesced(8);
                b.atomic(1, 0);
            }
            b.divergent(5);
        });
        let threads = cfg.total_threads() as u64;
        assert_eq!(r.tally.instructions, threads * 3 + 10 * 5);
        assert_eq!(r.tally.gmem_coalesced_bytes, threads * 8);
        assert_eq!(r.tally.atomics, threads);
        assert_eq!(r.tally.divergent_instructions, 50);
        assert!(r.time > SimTime::ZERO);
    }

    #[test]
    fn concurrent_blocks_share_atomics_correctly() {
        let d = Device::v100();
        let counter = d.alloc_atomic(1).unwrap();
        let cfg = LaunchConfig {
            grid_blocks: 64,
            block_threads: 128,
        };
        d.launch("count", cfg, |b| {
            for _t in b.threads() {
                counter.fetch_add(0, 1);
            }
        });
        assert_eq!(counter.load(0), cfg.total_threads() as u64);
    }

    #[test]
    #[should_panic(expected = "exceeds device limit")]
    fn oversized_block_rejected() {
        let d = Device::v100();
        d.launch(
            "bad",
            LaunchConfig {
                grid_blocks: 1,
                block_threads: 2048,
            },
            |_b| {},
        );
    }

    #[test]
    fn launch_map_returns_block_outputs_in_order() {
        let d = Device::v100();
        let cfg = LaunchConfig {
            grid_blocks: 9,
            block_threads: 32,
        };
        let (r, outs) = d.launch_map("ids", cfg, |b| {
            b.instr(1);
            b.block * 2
        });
        assert_eq!(outs, (0..9).map(|b| b * 2).collect::<Vec<_>>());
        assert_eq!(r.tally.instructions, 9);
    }

    #[test]
    fn more_work_takes_more_simulated_time() {
        let d = Device::v100();
        let cfg = LaunchConfig {
            grid_blocks: 80,
            block_threads: 256,
        };
        let small = d.launch("small", cfg, |b| {
            for _t in b.threads() {
                b.instr(10);
            }
        });
        let big = d.launch("big", cfg, |b| {
            for _t in b.threads() {
                b.instr(10_000);
            }
        });
        assert!(big.time > small.time);
    }
}
