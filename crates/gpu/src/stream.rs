//! Streams: ordered sequences of kernel launches and transfers with a
//! shared simulated clock.
//!
//! A [`Stream`] models a CUDA stream — work items execute in order; the
//! stream clock is the sum of their simulated durations. The per-rank GPU
//! pipelines each drive one stream so phase times fall out naturally.

use crate::launch::KernelReport;
use dedukt_sim::{SimClock, SimTime};

/// One entry in a stream trace.
#[derive(Clone, Debug)]
pub enum StreamEvent {
    /// A kernel completed.
    Kernel(KernelReport),
    /// A named transfer completed (host↔device or device↔device).
    Transfer {
        /// Label for traces.
        name: String,
        /// Modelled duration.
        time: SimTime,
    },
}

impl StreamEvent {
    /// The simulated duration of this event.
    pub fn time(&self) -> SimTime {
        match self {
            StreamEvent::Kernel(r) => r.time,
            StreamEvent::Transfer { time, .. } => *time,
        }
    }
}

/// An in-order work queue with a simulated clock and a trace of completed
/// events.
#[derive(Debug, Default)]
pub struct Stream {
    clock: SimClock,
    trace: Vec<StreamEvent>,
}

impl Stream {
    /// A fresh stream at simulated time zero.
    pub fn new() -> Stream {
        Stream::default()
    }

    /// Records a completed kernel; advances the clock by its duration.
    pub fn record_kernel(&mut self, report: KernelReport) -> SimTime {
        self.clock.advance(report.time);
        self.trace.push(StreamEvent::Kernel(report));
        self.clock.now()
    }

    /// Records a completed transfer; advances the clock by its duration.
    pub fn record_transfer(&mut self, name: &str, time: SimTime) -> SimTime {
        self.clock.advance(time);
        self.trace.push(StreamEvent::Transfer {
            name: name.to_string(),
            time,
        });
        self.clock.now()
    }

    /// Current simulated stream time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// The trace of completed events, in order.
    pub fn trace(&self) -> &[StreamEvent] {
        &self.trace
    }

    /// Sum of kernel durations in the trace.
    pub fn kernel_time(&self) -> SimTime {
        self.trace
            .iter()
            .filter(|e| matches!(e, StreamEvent::Kernel(_)))
            .map(StreamEvent::time)
            .sum()
    }

    /// Per-kernel durations in launch order — the round-by-round count
    /// kernel times the overlapped exchange hides behind the wire.
    pub fn kernel_times(&self) -> Vec<SimTime> {
        self.trace
            .iter()
            .filter(|e| matches!(e, StreamEvent::Kernel(_)))
            .map(StreamEvent::time)
            .collect()
    }

    /// Sum of transfer durations in the trace.
    pub fn transfer_time(&self) -> SimTime {
        self.trace
            .iter()
            .filter(|e| matches!(e, StreamEvent::Transfer { .. }))
            .map(StreamEvent::time)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::LaunchConfig;
    use crate::memory::Device;

    #[test]
    fn clock_accumulates_in_order() {
        let d = Device::v100();
        let mut s = Stream::new();
        let cfg = LaunchConfig {
            grid_blocks: 4,
            block_threads: 64,
        };
        let r = d.launch("a", cfg, |b| {
            for _ in b.threads() {
                b.instr(100);
            }
        });
        let t_kernel = r.time;
        s.record_kernel(r);
        s.record_transfer("d2h", SimTime::from_millis(2.0));
        assert_eq!(s.now(), t_kernel + SimTime::from_millis(2.0));
        assert_eq!(s.trace().len(), 2);
        assert_eq!(s.kernel_time(), t_kernel);
        assert_eq!(s.transfer_time(), SimTime::from_millis(2.0));
        assert_eq!(s.kernel_times(), vec![t_kernel]);
    }

    #[test]
    fn empty_stream_is_at_zero() {
        let s = Stream::new();
        assert!(s.now().is_zero());
        assert!(s.trace().is_empty());
    }
}
