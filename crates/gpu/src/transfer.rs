//! Host↔device transfer cost model.
//!
//! §III-B2 of the paper: exchanged data either moves GPU→CPU→network→CPU→GPU
//! (staged) or directly GPU→GPU over NVLink (GPUDirect); "our current
//! framework supports both methods". The functional copy is free in the
//! simulator (buffers are host memory); these functions charge the
//! corresponding *simulated* cost.

use crate::config::DeviceConfig;
use dedukt_sim::{DataVolume, SimTime};

/// The link a transfer crosses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Link {
    /// Host↔device over PCIe.
    Pcie,
    /// Host↔device (or device↔device on-node) over NVLink.
    NvLink,
}

/// Direction of a host↔device transfer. Both directions cost the same in
/// this model; the distinction is kept for traces.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TransferDirection {
    /// Host to device.
    HostToDevice,
    /// Device to host.
    DeviceToHost,
}

/// Simulated duration of moving `volume` across `link` once.
pub fn transfer_time(config: &DeviceConfig, link: Link, volume: DataVolume) -> SimTime {
    let bw = match link {
        Link::Pcie => config.pcie_bandwidth,
        Link::NvLink => config.nvlink_bandwidth,
    };
    SimTime::from_micros(config.transfer_latency_us) + bw.time_for_volume(volume)
}

/// Simulated duration of a staged exchange hop on one side: device→host
/// before the wire, or host→device after it. GPUDirect skips both.
pub fn staging_time(config: &DeviceConfig, volume: DataVolume) -> SimTime {
    transfer_time(config, Link::NvLink, volume)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_term_dominates_large_transfers() {
        let c = DeviceConfig::v100();
        // 25 GB over 25 GB/s NVLink ≈ 1 s.
        let t = transfer_time(&c, Link::NvLink, DataVolume::from_bytes(25_000_000_000));
        assert!((t.as_secs() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn latency_term_dominates_small_transfers() {
        let c = DeviceConfig::v100();
        let t = transfer_time(&c, Link::Pcie, DataVolume::from_bytes(64));
        assert!((t.as_micros() - c.transfer_latency_us).abs() < 1.0);
    }

    #[test]
    fn nvlink_beats_pcie() {
        let c = DeviceConfig::v100();
        let v = DataVolume::from_gib(1);
        assert!(transfer_time(&c, Link::NvLink, v) < transfer_time(&c, Link::Pcie, v));
    }

    #[test]
    fn staging_uses_nvlink() {
        let c = DeviceConfig::v100();
        let v = DataVolume::from_gib(2);
        assert_eq!(staging_time(&c, v), transfer_time(&c, Link::NvLink, v));
    }
}
