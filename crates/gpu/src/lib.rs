//! A SIMT GPU execution simulator.
//!
//! The paper's kernels (§III-B) run on NVIDIA V100s; this crate provides the
//! software stand-in (see DESIGN.md §2 for the substitution rationale).
//! It has two halves that are deliberately kept separate:
//!
//! * **Functional execution** — kernels are Rust closures launched over a
//!   `(grid, block, thread)` coordinate space ([`launch`]). Blocks execute
//!   in parallel on a rayon pool; device memory is real memory
//!   ([`memory::DeviceBuffer`], [`memory::AtomicBuffer`]), so every result a
//!   kernel produces is a real, bit-exact computation.
//! * **Analytic timing** — kernels tally the work they do (instructions,
//!   global-memory traffic with a coalescing classification, atomics); the
//!   cost model ([`cost`]) converts the tally plus the device parameters
//!   ([`config::DeviceConfig`], V100 preset) and the achieved occupancy
//!   ([`occupancy`]) into a *simulated* kernel duration. Host↔device
//!   transfer costs are modelled in [`transfer`].
//!
//! Nothing in this crate knows about k-mers; it is a generic substrate.

#![warn(missing_docs)]

pub mod config;
pub mod cost;
pub mod launch;
pub mod mem_plan;
pub mod memory;
pub mod occupancy;
pub mod stream;
pub mod transfer;

pub use config::DeviceConfig;
pub use launch::{BlockCtx, KernelReport, LaunchConfig, ThreadCtx, WorkTally};
pub use mem_plan::{MemPlan, MemSpec};
pub use memory::{AtomicBuffer, AtomicBuffer128, AtomicBuffer32, Device, DeviceBuffer, OomError};
pub use stream::Stream;
pub use transfer::{Link, TransferDirection};
