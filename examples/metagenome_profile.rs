//! Metagenome profiling: the intro's motivating workload.
//!
//! Builds a synthetic microbial community (three "species" at different
//! abundances), pools their reads into one metagenomic sample, counts
//! k-mers with the distributed GPU supermer pipeline, and then uses the
//! resulting counts the way taxonomic profilers do: match sample k-mers
//! against per-species reference k-mer sets to estimate relative
//! abundances.
//!
//! Run: `cargo run --release --example metagenome_profile`

use dedukt::core::{pipeline, verify::reference_counts, Mode, RunConfig};
use dedukt::dna::sim::{simulate_genome, simulate_reads, GenomeParams, ReadSimParams};
use dedukt::dna::{Read, ReadSet};
use std::collections::HashMap;

struct Species {
    name: &'static str,
    genome: Vec<u8>,
    coverage: f64,
}

fn main() {
    // 1. Three synthetic species at 8x / 4x / 1x relative abundance.
    let mk_genome = |len: usize, seed: u64| {
        simulate_genome(
            &GenomeParams {
                length: len,
                repeat_fraction: 0.05,
                repeat_len: (200, 800),
                gc_content: 0.45,
                low_complexity_fraction: 0.01,
                low_complexity_len: (20, 80),
            },
            seed,
        )
    };
    let community = [
        Species {
            name: "synthococcus-A",
            genome: mk_genome(30_000, 11),
            coverage: 16.0,
        },
        Species {
            name: "synthobacter-B",
            genome: mk_genome(45_000, 22),
            coverage: 8.0,
        },
        Species {
            name: "rarevibrio-C",
            genome: mk_genome(20_000, 33),
            coverage: 2.0,
        },
    ];

    // 2. Pool reads into one metagenomic sample.
    let mut sample = ReadSet::new();
    for (i, sp) in community.iter().enumerate() {
        let reads = simulate_reads(
            &sp.genome,
            &ReadSimParams {
                coverage: sp.coverage,
                mean_read_len: 2_000,
                sub_rate: 0.001,
                ..Default::default()
            },
            100 + i as u64,
        );
        println!("{}: {} reads at {:.0}x", sp.name, reads.len(), sp.coverage);
        sample.reads.extend(reads.reads.into_iter().map(|mut r| {
            r.id = format!("{}:{}", sp.name, r.id);
            r
        }));
    }
    println!(
        "pooled sample: {} reads, {} bases",
        sample.len(),
        sample.total_bases()
    );

    // 3. Count the sample's k-mers with the distributed pipeline.
    //    Reads sample both strands, so abundance estimation needs
    //    *canonical* (strand-neutral) counting — this reproduction's
    //    extension, available in the k-mer pipelines.
    let mut rc = RunConfig::new(Mode::GpuKmer, 2);
    rc.counting.canonical = true;
    rc.collect_tables = true;
    let report = pipeline::run(&sample, &rc).expect("valid config");
    println!(
        "\ncounted {} k-mer instances, {} distinct, on {} ranks in {} (simulated)",
        report.total_kmers,
        report.distinct_kmers,
        report.nranks,
        report.total_time()
    );

    // 4. Merge the distributed tables into one sample profile.
    let mut sample_counts: HashMap<u64, u64> = HashMap::new();
    for table in report.tables.as_ref().unwrap() {
        for &(kmer, count) in table {
            sample_counts.insert(kmer, count as u64); // rank key spaces are disjoint
        }
    }

    // 5. Reference k-mer sets per species (counted from the genomes) and
    //    abundance estimation: mean sample count over species-specific
    //    k-mers approximates that species' coverage.
    println!("\nestimated abundances (mean count over species-exclusive k-mers):");
    let reference_sets: Vec<(usize, HashMap<u64, u64>)> = community
        .iter()
        .enumerate()
        .map(|(i, sp)| {
            let genome_reads: ReadSet = [Read {
                id: sp.name.into(),
                codes: sp.genome.clone(),
                quals: None,
            }]
            .into_iter()
            .collect();
            (i, reference_counts(&genome_reads, &rc.counting))
        })
        .collect();
    for (i, refset) in &reference_sets {
        let sp = &community[*i];
        // Exclusive k-mers: in this species' reference, absent from others.
        let mut hits = 0u64;
        let mut mass = 0u64;
        for kmer in refset.keys() {
            let in_others = reference_sets
                .iter()
                .any(|(j, other)| j != i && other.contains_key(kmer));
            if in_others {
                continue;
            }
            if let Some(&c) = sample_counts.get(kmer) {
                hits += 1;
                mass += c;
            }
        }
        let est = if hits > 0 {
            mass as f64 / hits as f64
        } else {
            0.0
        };
        println!(
            "  {:<16} true coverage {:>4.1}x   estimated {:>5.2}x   ({} exclusive k-mers hit)",
            sp.name, sp.coverage, est, hits
        );
        // The estimate must recover the right ordering and rough scale.
        assert!(
            est > sp.coverage * 0.5 && est < sp.coverage * 1.8,
            "abundance estimate off for {}: {est} vs {}",
            sp.name,
            sp.coverage
        );
    }
    println!("\nok: k-mer counts recover the community's abundance structure");
}
