//! Quickstart: count k-mers with the GPU supermer pipeline.
//!
//! Generates a small synthetic E. coli-like dataset, runs the paper's
//! best configuration (GPU supermer counter, k=17, m=7, window=15) on a
//! simulated 4-node Summit slice, and prints the phase breakdown, the
//! communication savings versus the k-mer pipeline, and the k-mer
//! spectrum.
//!
//! Run: `cargo run --release --example quickstart`

use dedukt::core::{pipeline, Mode, RunConfig};
use dedukt::dna::{Dataset, DatasetId, ScalePreset};

fn main() {
    // 1. Data: a deterministic synthetic stand-in for E. coli 30X.
    let dataset = Dataset::new(DatasetId::EColi30x, ScalePreset::Tiny);
    let reads = dataset.generate();
    println!(
        "dataset: {} — {} reads, {} bases",
        dataset.id.short_name(),
        reads.len(),
        reads.total_bases()
    );

    // 2. Configure: 4 Summit nodes, 6 simulated V100s each.
    let mut config = RunConfig::new(Mode::GpuSupermer, 4);
    config.collect_spectrum = true;

    // 3. Run the distributed pipeline (parse → exchange → count).
    let report = pipeline::run(&reads, &config).expect("valid config");
    println!(
        "\ncounted {} k-mer instances ({} distinct) on {} ranks",
        report.total_kmers, report.distinct_kmers, report.nranks
    );
    println!("phase breakdown (simulated):");
    println!("  parse & process : {}", report.phases.parse);
    println!("  exchange        : {}", report.phases.exchange);
    println!("  count           : {}", report.phases.count);
    println!("  total           : {}", report.total_time());

    // 4. Compare the exchange volume against the k-mer pipeline.
    let kmer_report =
        pipeline::run(&reads, &RunConfig::new(Mode::GpuKmer, 4)).expect("valid config");
    println!(
        "\nexchange: {} supermers ({} B) vs {} k-mers ({} B) — {:.2}x fewer bytes",
        report.exchange.units,
        report.exchange.bytes,
        kmer_report.exchange.units,
        kmer_report.exchange.bytes,
        kmer_report.exchange.bytes as f64 / report.exchange.bytes as f64
    );

    // 5. The k-mer spectrum (multiplicity histogram).
    let spectrum = report.spectrum.expect("requested via collect_spectrum");
    println!("\nk-mer spectrum (first 10 multiplicities):");
    for (mult, count) in spectrum.iter().take(10) {
        println!("  multiplicity {mult:>3}: {count} distinct k-mers");
    }
    println!(
        "  singletons: {} of {} distinct",
        spectrum.singletons(),
        spectrum.distinct()
    );

    // Sanity: both pipelines must count the exact same multiset.
    assert_eq!(report.total_kmers, kmer_report.total_kmers);
    assert_eq!(report.distinct_kmers, kmer_report.distinct_kmers);
    println!("\nok: supermer and k-mer pipelines agree exactly");
}
