//! Supermer anatomy: the paper's §IV-A / Fig. 4 worked example, end to
//! end, then the same dissection on a synthetic read with the paper's
//! production parameters.
//!
//! Run: `cargo run --release --example supermer_anatomy`

use dedukt::core::minimizer::{MinimizerScheme, OrderingKind};
use dedukt::core::supermer::{build_supermers_reference, build_supermers_windowed};
use dedukt::core::CountingConfig;
use dedukt::dna::base::Base;
use dedukt::dna::kmer::Kmer;
use dedukt::dna::Encoding;

fn codes_of(s: &str) -> Vec<u8> {
    s.bytes()
        .map(|c| Base::from_ascii(c).unwrap().code())
        .collect()
}

fn ascii_of(codes: &[u8]) -> String {
    codes
        .iter()
        .map(|&c| Base::from_code(c).to_ascii() as char)
        .collect()
}

fn main() {
    // ── Part 1: Fig. 4 verbatim ────────────────────────────────────────
    let read = "GTCATCGCACTTACTGATG";
    let (k, m) = (8usize, 4usize);
    let scheme = MinimizerScheme {
        encoding: Encoding::Alphabetical, // Fig. 4 uses plain lexicographic
        ordering: OrderingKind::EncodedLexicographic,
        m,
    };
    println!(
        "Fig. 4 worked example: read={read} (len {}), k={k}, m={m}",
        read.len()
    );
    let codes = codes_of(read);

    println!("\nk-mers and their minimizers:");
    for i in 0..=read.len() - k {
        let kw = Kmer::from_ascii(&read.as_bytes()[i..i + k], scheme.encoding).unwrap();
        let mz = scheme.minimizer_of(kw.word(), k);
        println!(
            "  pos {i:>2}: {}  minimizer {} @ {}",
            kw.to_ascii(scheme.encoding),
            Kmer::from_word(mz.word, m).to_ascii(scheme.encoding),
            i + mz.pos
        );
    }

    let supermers = build_supermers_reference(&codes, k, &scheme);
    let total: usize = supermers.iter().map(|s| s.codes.len()).sum();
    println!("\nsupermers:");
    for (i, sm) in supermers.iter().enumerate() {
        println!(
            "  #{i}: {} ({} bases, {} k-mers, minimizer {})",
            ascii_of(&sm.codes),
            sm.codes.len(),
            sm.num_kmers(k),
            Kmer::from_word(sm.minimizer, m).to_ascii(scheme.encoding),
        );
    }
    let kmer_bases = (read.len() - k + 1) * k;
    println!(
        "\ncommunication: {} supermer bases vs {} k-mer bases — {:.1}x reduction",
        total,
        kmer_bases,
        kmer_bases as f64 / total as f64
    );
    assert_eq!(supermers.len(), 3, "paper: three supermers");
    assert_eq!(total, 33, "paper: 33 bases");

    // ── Part 2: production parameters on a longer read ────────────────
    let cfg = CountingConfig::default(); // k=17, m=7, window=15, random encoding
    let scheme = cfg.minimizer_scheme();
    let long_read: Vec<u8> = {
        let mut rng = dedukt::sim::SplitMix64::new(7);
        (0..300).map(|_| rng.next_below(4) as u8).collect()
    };
    let windowed = build_supermers_windowed(&long_read, cfg.k, cfg.window, &scheme);
    let unbounded = build_supermers_reference(&long_read, cfg.k, &scheme);
    let nkmers = long_read.len() - cfg.k + 1;
    println!(
        "\nproduction parameters (k={}, m={}, window={}), 300-base read:",
        cfg.k, cfg.m, cfg.window
    );
    println!("  k-mers:               {nkmers}");
    println!(
        "  windowed supermers:   {} (avg {:.1} bases, max allowed {})",
        windowed.len(),
        windowed.iter().map(|s| s.len as usize).sum::<usize>() as f64 / windowed.len() as f64,
        cfg.max_supermer_bases()
    );
    println!(
        "  unbounded supermers:  {} (avg {:.1} bases)",
        unbounded.len(),
        unbounded.iter().map(|s| s.codes.len()).sum::<usize>() as f64 / unbounded.len() as f64
    );
    println!(
        "  wire bytes: {} (supermers, 9 B each) vs {} (k-mers, 8 B each)",
        windowed.len() * 9,
        nkmers * 8
    );

    // Every k-mer of every supermer shares the supermer's minimizer.
    for sm in &windowed {
        for kw in sm.kmers(cfg.k) {
            assert_eq!(scheme.minimizer_of(kw, cfg.k).word, sm.minimizer);
        }
    }
    println!("\nok: all windowed supermers verified against the minimizer invariant");
}
