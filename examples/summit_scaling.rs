//! Summit scaling study: sweep node counts and watch the bottleneck move.
//!
//! Runs the C. elegans-like dataset through all three counters at 4, 16
//! and 64 simulated Summit nodes, printing per-phase times, exchange
//! fractions, and the supermer win at each scale — a miniature of the
//! paper's §V evaluation in one binary.
//!
//! Run: `cargo run --release --example summit_scaling`

use dedukt::core::{pipeline, Mode, RunConfig};
use dedukt::dna::{Dataset, DatasetId, ScalePreset};

fn main() {
    // 0.25× bench scale: enough data (~8.5 M bases) to keep every
    // simulated device busy across all node counts.
    let dataset = Dataset::new(DatasetId::CElegans40x, ScalePreset::Custom(0.25));
    let reads = dataset.generate();
    println!(
        "dataset: {} — {} reads, {} bases, {} k-mers",
        dataset.id.short_name(),
        reads.len(),
        reads.total_bases(),
        reads.total_kmers(17)
    );

    for nodes in [4usize, 16, 64] {
        println!("\n===== {nodes} nodes =====");
        let cpu =
            pipeline::run(&reads, &RunConfig::new(Mode::CpuBaseline, nodes)).expect("valid config");
        let kmer =
            pipeline::run(&reads, &RunConfig::new(Mode::GpuKmer, nodes)).expect("valid config");
        let smer =
            pipeline::run(&reads, &RunConfig::new(Mode::GpuSupermer, nodes)).expect("valid config");

        println!(
            "{:<22} {:>12} {:>12} {:>12} {:>12} {:>9}",
            "counter", "parse", "exchange", "count", "total", "exch %"
        );
        for (name, r) in [
            (format!("CPU baseline ({})", cpu.nranks), &cpu),
            (format!("GPU kmer ({})", kmer.nranks), &kmer),
            (format!("GPU supermer ({})", smer.nranks), &smer),
        ] {
            println!(
                "{:<22} {:>12} {:>12} {:>12} {:>12} {:>8.0}%",
                name,
                format!("{}", r.phases.parse),
                format!("{}", r.phases.exchange),
                format!("{}", r.phases.count),
                format!("{}", r.total_time()),
                r.phases.exchange_fraction() * 100.0
            );
        }
        println!(
            "speedup over CPU: kmer {:.1}x, supermer {:.1}x; supermer over kmer {:.2}x",
            kmer.speedup_over(&cpu),
            smer.speedup_over(&cpu),
            kmer.total_time() / smer.total_time()
        );

        // All three counters must agree exactly at every scale.
        assert_eq!(cpu.total_kmers, kmer.total_kmers);
        assert_eq!(cpu.distinct_kmers, smer.distinct_kmers);
    }

    println!(
        "\nthe paper's story in one sweep: GPU acceleration collapses compute, the exchange\n\
         fraction climbs with node count, and supermers claw back exchange time."
    );
}
