//! Genome-size estimation from a k-mer spectrum — the §II-A use case.
//!
//! Sequencing a genome at coverage C makes every single-copy k-mer appear
//! ~C times; the spectrum's coverage peak reveals C, and dividing the
//! solid k-mer mass by it recovers the genome size without assembly.
//! This example sequences a hidden synthetic genome, counts canonically
//! with the distributed pipeline, and reports how close the estimates
//! land.
//!
//! Run: `cargo run --release --example genome_size`

use dedukt::core::analysis::{coverage_peak, error_mass_fraction, estimate_genome_size};
use dedukt::core::{pipeline, Mode, RunConfig};
use dedukt::dna::sim::{simulate_genome, simulate_reads, GenomeParams, ReadSimParams};

fn main() {
    // The "unknown" genome: 80 kbp, modest repeats.
    let true_size = 80_000;
    let true_coverage = 28.0;
    let genome = simulate_genome(
        &GenomeParams {
            length: true_size,
            repeat_fraction: 0.04,
            repeat_len: (300, 1_500),
            gc_content: 0.42,
            low_complexity_fraction: 0.005,
            low_complexity_len: (20, 60),
        },
        99,
    );
    let reads = simulate_reads(
        &genome,
        &ReadSimParams {
            coverage: true_coverage,
            mean_read_len: 3_000,
            sub_rate: 0.004, // realistic error load -> visible error peak
            ..Default::default()
        },
        7,
    );
    println!(
        "sequenced {} reads ({} bases) from a hidden genome",
        reads.len(),
        reads.total_bases()
    );

    // Count canonically (strand-neutral) with the distributed pipeline.
    let mut rc = RunConfig::new(Mode::GpuKmer, 2);
    rc.counting.canonical = true;
    rc.collect_spectrum = true;
    let report = pipeline::run(&reads, &rc).expect("valid config");
    println!(
        "counted {} k-mer instances, {} distinct, in {} (simulated)",
        report.total_kmers,
        report.distinct_kmers,
        report.total_time()
    );
    let spectrum = report.spectrum.expect("requested");

    // Analyse the spectrum.
    let peak = coverage_peak(&spectrum).expect("coverage peak");
    let est = estimate_genome_size(&spectrum).expect("estimate");
    let err_frac = error_mass_fraction(&spectrum).unwrap_or(0.0);
    println!("\nspectrum analysis:");
    println!("  error k-mer mass : {:.1}% of instances", err_frac * 100.0);
    println!("  coverage peak    : {peak}x   (true coverage {true_coverage}x)");
    println!("  genome size      : {est} bp  (true size {true_size} bp)");
    let rel = (est as f64 - true_size as f64).abs() / true_size as f64;
    println!("  relative error   : {:.1}%", rel * 100.0);
    assert!(rel < 0.15, "estimate should land within 15%: {rel:.3}");
    println!("\nok: the k-mer histogram recovered the genome's size blind");
}
