//! Helpers shared by the invariant suites (fault, memory, exchange,
//! rank failure): dataset slices, instrumented configs, and the
//! bit-identity assertions every recovery layer is held to. Each test
//! binary compiles its own copy, so helpers a given suite doesn't use
//! are expected.
#![allow(dead_code)]

use dedukt::core::pipeline::RunReport;
use dedukt::core::{Mode, PackedKmer, RunConfig};
use dedukt::dna::{Dataset, DatasetId, ReadSet, ScalePreset};

/// The canonical tiny slice every invariant suite runs on.
pub fn tiny_reads() -> ReadSet {
    Dataset::new(DatasetId::EColi30x, ScalePreset::Tiny).generate()
}

/// A config with key width `k` dialed in — wide keys (`k > 31`) widen
/// the minimizer geometry to match — and only the spectrum collected.
pub fn spectrum_config(mode: Mode, nodes: usize, k: usize) -> RunConfig {
    let mut rc = RunConfig::new(mode, nodes);
    rc.counting.k = k;
    if k > 31 {
        rc.counting.m = 11;
        rc.counting.window = 24;
    }
    rc.collect_spectrum = true;
    rc
}

/// [`spectrum_config`] plus the per-rank tables and the metrics export,
/// for suites that reconcile recovery accounting.
pub fn instrumented_config(mode: Mode, nodes: usize, k: usize) -> RunConfig {
    let mut rc = spectrum_config(mode, nodes, k);
    rc.collect_tables = true;
    rc.collect_metrics = true;
    rc
}

/// Per-rank tables as sorted multisets: every recovery layer (retry
/// redelivery, spill merge, regrow migration, replay) may reorder a
/// rank's insertions, so layout is never part of the contract.
pub fn sorted_tables<K: PackedKmer>(r: &RunReport<K>) -> Vec<Vec<(K, u32)>> {
    r.tables
        .as_ref()
        .expect("tables requested")
        .iter()
        .map(|t| {
            let mut t = t.clone();
            t.sort_unstable();
            t
        })
        .collect()
}

/// The headline guarantee shared by every suite: whatever the recovery
/// machinery did on the way, the counted results are bit-identical to
/// the reference run. Per-rank placement is deliberately *not* asserted
/// here — rank failure re-homes ranges, so only the suites whose plans
/// keep ownership fixed may pin `load.kmers_per_rank` element-wise.
pub fn assert_counts_identical<K: PackedKmer>(got: &RunReport<K>, reference: &RunReport<K>) {
    assert_eq!(got.total_kmers, reference.total_kmers);
    assert_eq!(got.distinct_kmers, reference.distinct_kmers);
    assert_eq!(
        got.spectrum, reference.spectrum,
        "spectra must be bit-identical"
    );
    assert_eq!(
        got.load.kmers_per_rank.iter().sum::<u64>(),
        reference.load.kmers_per_rank.iter().sum::<u64>(),
        "per-rank loads must conserve the instance total"
    );
}
