//! Integration: the three distributed pipelines must produce *identical*
//! k-mer counts — equal to the single-threaded oracle — across node
//! counts, datasets, and parameter settings.

use dedukt::core::verify::{check_against_reference, reference_counts, reference_total};
use dedukt::core::{pipeline, Mode, RunConfig};
use dedukt::dna::{Dataset, DatasetId, ScalePreset};

fn run(
    mode: Mode,
    nodes: usize,
    reads: &dedukt::dna::ReadSet,
    m: usize,
) -> dedukt::core::RunReport {
    let mut rc = RunConfig::new(mode, nodes);
    rc.counting.m = m;
    rc.collect_tables = true;
    pipeline::run(reads, &rc).expect("valid config")
}

#[test]
fn all_pipelines_match_oracle_on_all_tiny_datasets() {
    for id in [DatasetId::EColi30x, DatasetId::CElegans40x] {
        let reads = Dataset::new(id, ScalePreset::Tiny).generate();
        let cfg = RunConfig::new(Mode::GpuKmer, 1).counting;
        let expect_total = reference_total(&reads, cfg.k);
        for mode in [Mode::CpuBaseline, Mode::GpuKmer, Mode::GpuSupermer] {
            let report = run(mode, 1, &reads, 7);
            assert_eq!(report.total_kmers, expect_total, "{id:?} {mode:?}");
            check_against_reference(&reads, &cfg, report.tables.as_ref().unwrap())
                .unwrap_or_else(|e| panic!("{id:?} {mode:?}: {e}"));
        }
    }
}

#[test]
fn node_count_does_not_change_results() {
    let reads = Dataset::new(DatasetId::PAeruginosa30x, ScalePreset::Tiny).generate();
    let reference = reference_counts(&reads, &RunConfig::new(Mode::GpuKmer, 1).counting);
    for mode in [Mode::GpuKmer, Mode::GpuSupermer] {
        for nodes in [1usize, 2, 4] {
            let report = run(mode, nodes, &reads, 7);
            assert_eq!(
                report.distinct_kmers,
                reference.len() as u64,
                "{mode:?} at {nodes} nodes"
            );
            assert_eq!(report.nranks, nodes * 6);
        }
    }
}

#[test]
fn minimizer_length_does_not_change_counts() {
    // m affects routing and volume, never the counted multiset.
    let reads = Dataset::new(DatasetId::ABaumannii30x, ScalePreset::Tiny).generate();
    let base = run(Mode::GpuSupermer, 2, &reads, 7);
    for m in [5usize, 9, 11] {
        let r = run(Mode::GpuSupermer, 2, &reads, m);
        assert_eq!(r.total_kmers, base.total_kmers, "m={m}");
        assert_eq!(r.distinct_kmers, base.distinct_kmers, "m={m}");
    }
}

#[test]
fn gpu_direct_changes_time_not_results() {
    let reads = Dataset::new(DatasetId::VVulnificus30x, ScalePreset::Tiny).generate();
    let mut rc = RunConfig::new(Mode::GpuSupermer, 2);
    rc.collect_tables = true;
    let staged = pipeline::run(&reads, &rc).expect("valid config");
    rc.gpu_direct = true;
    let direct = pipeline::run(&reads, &rc).expect("valid config");
    assert_eq!(staged.total_kmers, direct.total_kmers);
    assert_eq!(staged.tables, direct.tables);
    assert!(direct.phases.exchange < staged.phases.exchange);
}

#[test]
fn every_rank_owns_a_disjoint_key_space() {
    let reads = Dataset::new(DatasetId::EColi30x, ScalePreset::Tiny).generate();
    for mode in [Mode::CpuBaseline, Mode::GpuKmer, Mode::GpuSupermer] {
        let report = run(mode, 2, &reads, 7);
        let tables = report.tables.as_ref().unwrap();
        let mut seen = std::collections::HashSet::new();
        for (rank, table) in tables.iter().enumerate() {
            for &(kmer, _) in table {
                assert!(
                    seen.insert(kmer),
                    "{mode:?}: k-mer {kmer:#x} appears on two ranks (second: {rank})"
                );
            }
        }
    }
}

#[test]
fn multi_round_exchange_changes_time_not_results() {
    // §III-A: memory-bounded runs exchange in rounds; the counted multiset
    // must be identical and only the exchange latency may grow.
    let reads = Dataset::new(DatasetId::EColi30x, ScalePreset::Tiny).generate();
    for mode in [Mode::CpuBaseline, Mode::GpuKmer] {
        let mut rc = RunConfig::new(mode, 1);
        rc.collect_tables = true;
        let single = pipeline::run(&reads, &rc).expect("valid config");
        rc.round_limit_bytes = Some(4096); // force many small rounds
        let rounds = pipeline::run(&reads, &rc).expect("valid config");
        assert_eq!(single.total_kmers, rounds.total_kmers, "{mode:?}");
        // Probing layout (hence iteration order) depends on insertion
        // order, so compare the table *contents* per rank.
        let sorted = |r: &dedukt::core::RunReport| -> Vec<Vec<(u64, u32)>> {
            r.tables
                .as_ref()
                .unwrap()
                .iter()
                .map(|t| {
                    let mut t = t.clone();
                    t.sort_unstable();
                    t
                })
                .collect()
        };
        assert_eq!(sorted(&single), sorted(&rounds), "{mode:?}");
        assert!(
            rounds.exchange.alltoallv_time >= single.exchange.alltoallv_time,
            "{mode:?}: rounds must not make the wire faster"
        );
        assert_eq!(single.exchange.bytes, rounds.exchange.bytes);
    }
}

#[test]
fn spectrum_totals_match_report() {
    let reads = Dataset::new(DatasetId::EColi30x, ScalePreset::Tiny).generate();
    let mut rc = RunConfig::new(Mode::GpuKmer, 2);
    rc.collect_spectrum = true;
    let report = pipeline::run(&reads, &rc).expect("valid config");
    let spectrum = report.spectrum.unwrap();
    assert_eq!(spectrum.total(), report.total_kmers);
    assert_eq!(spectrum.distinct(), report.distinct_kmers);
}
