//! End-to-end tests of the `dedukt` command-line tool: simulate → count →
//! dump → compare, through real files and process invocations.

use std::path::PathBuf;
use std::process::Command;

fn dedukt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dedukt"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dedukt-cli-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn simulate_writes_parseable_fastq() {
    let dir = tmpdir("simulate");
    let fastq = dir.join("ecoli.fastq");
    let out = dedukt()
        .args(["simulate", "ecoli", "--scale", "tiny", "--out"])
        .arg(&fastq)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&fastq).unwrap();
    assert!(text.starts_with('@'));
    // 4 lines per record.
    assert_eq!(text.lines().count() % 4, 0);
    let reads =
        dedukt::dna::fastq::parse_fastq(std::io::BufReader::new(text.as_bytes()), 1).unwrap();
    assert!(!reads.is_empty());
}

#[test]
fn count_produces_correct_dump_and_spectrum() {
    let dir = tmpdir("count");
    let fastq = dir.join("reads.fastq");
    let dump = dir.join("counts.tsv");
    let spec = dir.join("spectrum.tsv");
    assert!(dedukt()
        .args(["simulate", "vvulnificus", "--scale", "tiny", "--out"])
        .arg(&fastq)
        .status()
        .unwrap()
        .success());
    let out = dedukt()
        .args(["count"])
        .arg(&fastq)
        .args(["--mode", "supermer", "--nodes", "2", "--out"])
        .arg(&dump)
        .arg("--spectrum")
        .arg(&spec)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The dump must agree with the library oracle on the same file.
    let reads = dedukt::dna::fastq::parse_fastq(
        std::io::BufReader::new(std::fs::File::open(&fastq).unwrap()),
        17,
    )
    .unwrap();
    let cfg = dedukt::core::RunConfig::new(dedukt::core::Mode::GpuSupermer, 2).counting;
    let oracle = dedukt::core::verify::reference_counts(&reads, &cfg);
    let dumped = dedukt::core::dump::read_dump(
        std::io::BufReader::new(std::fs::File::open(&dump).unwrap()),
        cfg.encoding,
    )
    .unwrap();
    assert_eq!(dumped.len(), oracle.len());
    for (kmer, count) in &dumped {
        assert_eq!(oracle.get(kmer).copied(), Some(*count as u64));
    }

    // The spectrum file is multiplicity\tdistinct and its mass matches.
    let spec_text = std::fs::read_to_string(&spec).unwrap();
    let mut distinct = 0u64;
    for line in spec_text.lines() {
        let (_, d) = line.split_once('\t').unwrap();
        distinct += d.parse::<u64>().unwrap();
    }
    assert_eq!(distinct, oracle.len() as u64);
}

#[test]
fn compare_detects_identity_and_difference() {
    let dir = tmpdir("compare");
    let fastq = dir.join("reads.fastq");
    let a = dir.join("a.tsv");
    let b = dir.join("b.tsv");
    assert!(dedukt()
        .args(["simulate", "abaumannii", "--scale", "tiny", "--out"])
        .arg(&fastq)
        .status()
        .unwrap()
        .success());
    // Count twice with different modes: dumps must be identical.
    for (mode, path) in [("gpu", &a), ("cpu", &b)] {
        assert!(dedukt()
            .args(["count"])
            .arg(&fastq)
            .args(["--mode", mode, "--out"])
            .arg(path)
            .status()
            .unwrap()
            .success());
    }
    let same = dedukt().args(["compare"]).arg(&a).arg(&b).output().unwrap();
    assert!(
        same.status.success(),
        "{}",
        String::from_utf8_lossy(&same.stderr)
    );
    assert!(String::from_utf8_lossy(&same.stdout).contains("identical"));

    // Corrupt one count; compare must fail.
    let text = std::fs::read_to_string(&b).unwrap();
    let mut lines: Vec<String> = text.lines().map(String::from).collect();
    let (seq, count) = lines[0].split_once('\t').unwrap();
    lines[0] = format!("{seq}\t{}", count.parse::<u32>().unwrap() + 1);
    std::fs::write(&b, lines.join("\n")).unwrap();
    let diff = dedukt().args(["compare"]).arg(&a).arg(&b).output().unwrap();
    assert!(!diff.status.success());
}

#[test]
fn wide_k_counts_through_the_u128_pipeline() {
    let dir = tmpdir("wide");
    let fastq = dir.join("reads.fastq");
    let dump = dir.join("wide.tsv");
    assert!(dedukt()
        .args(["simulate", "ecoli", "--scale", "tiny", "--out"])
        .arg(&fastq)
        .status()
        .unwrap()
        .success());
    let out = dedukt()
        .args(["count"])
        .arg(&fastq)
        .args(["--mode", "supermer", "--k", "41", "--m", "11", "--out"])
        .arg(&dump)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&dump).unwrap();
    let first = text.lines().next().unwrap();
    let (seq, count) = first.split_once('\t').unwrap();
    assert_eq!(seq.len(), 41, "wide k-mers render at full length");
    assert!(count.parse::<u32>().unwrap() >= 1);
    // Totals must match the wide oracle.
    let reads = dedukt::dna::fastq::parse_fastq(
        std::io::BufReader::new(std::fs::File::open(&fastq).unwrap()),
        41,
    )
    .unwrap();
    let cfg = dedukt::core::CountingConfig {
        k: 41,
        m: 11,
        window: 24,
        ..Default::default()
    };
    let oracle = dedukt::core::wide::wide_reference_counts(&reads, &cfg);
    assert_eq!(text.lines().count(), oracle.len());
}

#[test]
fn min_qual_trims_before_counting() {
    let dir = tmpdir("minqual");
    let fastq = dir.join("reads.fastq");
    // Hand-written FASTQ: one read whose tail is junk quality.
    let seq = "ACGTTGCAAGGATCCGTACCAGTTGACTGATC"; // 32 bases, aperiodic
    let quals = format!("{}{}", "I".repeat(24), "#".repeat(8));
    std::fs::write(&fastq, format!("@r1\n{seq}\n+\n{quals}\n")).unwrap();
    let full = dir.join("full.tsv");
    let trimmed = dir.join("trimmed.tsv");
    assert!(dedukt()
        .args(["count"])
        .arg(&fastq)
        .args(["--mode", "gpu", "--out"])
        .arg(&full)
        .status()
        .unwrap()
        .success());
    assert!(dedukt()
        .args(["count"])
        .arg(&fastq)
        .args(["--mode", "gpu", "--min-qual", "20", "--out"])
        .arg(&trimmed)
        .status()
        .unwrap()
        .success());
    let count_lines = |p: &PathBuf| std::fs::read_to_string(p).unwrap().lines().count();
    // Full read: 32 − 17 + 1 = 16 k-mers; trimmed to 24 good bases: 8.
    assert_eq!(count_lines(&full), 16);
    assert_eq!(count_lines(&trimmed), 8);
}

#[test]
fn bad_usage_exits_nonzero() {
    assert!(!dedukt()
        .args(["frobnicate"])
        .output()
        .unwrap()
        .status
        .success());
    assert!(!dedukt()
        .args(["simulate", "unknown-species"])
        .output()
        .unwrap()
        .status
        .success());
    assert!(!dedukt()
        .args(["count", "/nonexistent.fastq"])
        .output()
        .unwrap()
        .status
        .success());
    // Help succeeds.
    assert!(dedukt().args(["--help"]).output().unwrap().status.success());
}

#[test]
fn exchange_flags_route_and_compress_without_changing_the_dump() {
    let dir = tmpdir("exchange");
    let fastq = dir.join("reads.fastq");
    assert!(dedukt()
        .args(["simulate", "ecoli", "--scale", "tiny", "--out"])
        .arg(&fastq)
        .status()
        .unwrap()
        .success());
    let direct = dir.join("direct.tsv");
    assert!(dedukt()
        .args(["count"])
        .arg(&fastq)
        .args(["--mode", "supermer", "--nodes", "2", "--out"])
        .arg(&direct)
        .status()
        .unwrap()
        .success());
    // Hierarchical routing + the wire codec: same dump, byte for byte.
    let routed = dir.join("routed.tsv");
    let out = dedukt()
        .args(["count"])
        .arg(&fastq)
        .args([
            "--mode",
            "supermer",
            "--nodes",
            "2",
            "--exchange-algo",
            "hierarchical",
            "--wire-compress",
            "--out",
        ])
        .arg(&routed)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read_to_string(&direct).unwrap(),
        std::fs::read_to_string(&routed).unwrap(),
        "routing and compression must not change a single count"
    );
    // A malformed algorithm name is a clean exit 2 naming the value.
    let out = dedukt()
        .args(["count"])
        .arg(&fastq)
        .args(["--exchange-algo", "fancy"])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "bad --exchange-algo must exit 2, got {:?}",
        out.status
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("fancy"),
        "stderr must name the value:\n{stderr}"
    );
}

#[test]
fn fault_flags_recover_and_match_the_fault_free_dump() {
    let dir = tmpdir("fault");
    let fastq = dir.join("reads.fastq");
    assert!(dedukt()
        .args(["simulate", "ecoli", "--scale", "tiny", "--out"])
        .arg(&fastq)
        .status()
        .unwrap()
        .success());
    let clean = dir.join("clean.tsv");
    let faulty = dir.join("faulty.tsv");
    let metrics = dir.join("metrics.json");
    assert!(dedukt()
        .args(["count"])
        .arg(&fastq)
        .args(["--mode", "supermer", "--nodes", "2", "--out"])
        .arg(&clean)
        .status()
        .unwrap()
        .success());
    let out = dedukt()
        .args(["count"])
        .arg(&fastq)
        .args([
            "--mode",
            "supermer",
            "--nodes",
            "2",
            "--fault-seed",
            "42",
            "--fault-spec",
            "fail=0.2,corrupt=0.1,retries=8",
            "--out",
        ])
        .arg(&faulty)
        .arg("--metrics")
        .arg(&metrics)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The headline guarantee, end to end: same dump, byte for byte.
    assert_eq!(
        std::fs::read_to_string(&clean).unwrap(),
        std::fs::read_to_string(&faulty).unwrap(),
        "fault recovery must not change a single count"
    );
    // Recovery surfaced through --metrics.
    let json = std::fs::read_to_string(&metrics).unwrap();
    assert!(json.contains("\"name\": \"retries_total\""));
    assert!(json.contains("\"name\": \"exchange_retry_bytes_total\""));
    assert!(json.contains("\"name\": \"recovery_seconds_total\""));
}

#[test]
fn malformed_fault_specs_exit_two_with_a_config_error() {
    let dir = tmpdir("fault-bad");
    let fastq = dir.join("reads.fastq");
    assert!(dedukt()
        .args(["simulate", "ecoli", "--scale", "tiny", "--out"])
        .arg(&fastq)
        .status()
        .unwrap()
        .success());
    // (spec, message fragment): rates out of range and retries=0 pass
    // parsing but fail validation, like every other ConfigError; unknown
    // keys and junk values fail at the parser.
    for (spec, needle) in [
        ("fail=1.5", "must be in [0, 1]"),
        ("bogus=1", "unknown fault spec key"),
        ("retries=0", "retries must be at least 1"),
        ("fail=lots", "fault spec"),
        ("corrupt", "fault spec"),
    ] {
        let out = dedukt()
            .args(["count"])
            .arg(&fastq)
            .args(["--fault-spec", spec])
            .output()
            .unwrap();
        assert_eq!(
            out.status.code(),
            Some(2),
            "spec {spec:?} must exit 2, got {:?}",
            out.status
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(needle),
            "spec {spec:?}: missing {needle:?} in\n{stderr}"
        );
    }
    // An unsurvivable plan is a clean exit-2 failure, not a panic.
    let out = dedukt()
        .args(["count"])
        .arg(&fastq)
        .args(["--fault-spec", "fail=1,corrupt=0,retries=2"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("fault retry budget exhausted"),
        "missing budget message in\n{stderr}"
    );
}

#[test]
fn mem_flags_recover_and_match_the_unconstrained_dump() {
    let dir = tmpdir("mem");
    let fastq = dir.join("reads.fastq");
    assert!(dedukt()
        .args(["simulate", "ecoli", "--scale", "tiny", "--out"])
        .arg(&fastq)
        .status()
        .unwrap()
        .success());
    let clean = dir.join("clean.tsv");
    let pressured = dir.join("pressured.tsv");
    let metrics = dir.join("metrics.json");
    assert!(dedukt()
        .args(["count"])
        .arg(&fastq)
        .args(["--mode", "supermer", "--nodes", "2", "--out"])
        .arg(&clean)
        .status()
        .unwrap()
        .success());
    // A 1% table estimate forces overflow on every rank; injected
    // allocation failures close the regrow path half the time, so both
    // recovery tiers (device regrow and host spill) actually run.
    let out = dedukt()
        .args(["count"])
        .arg(&fastq)
        .args([
            "--mode",
            "supermer",
            "--nodes",
            "2",
            "--table-safety",
            "0.01",
            "--mem-seed",
            "7",
            "--mem-spec",
            "under=0.5,shrink=0.5,afail=0.5,spill=100000",
            "--out",
        ])
        .arg(&pressured)
        .arg("--metrics")
        .arg(&metrics)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The headline guarantee, end to end: same dump, byte for byte.
    assert_eq!(
        std::fs::read_to_string(&clean).unwrap(),
        std::fs::read_to_string(&pressured).unwrap(),
        "memory-pressure recovery must not change a single count"
    );
    // Recovery surfaced through --metrics.
    let json = std::fs::read_to_string(&metrics).unwrap();
    assert!(json.contains("\"name\": \"table_regrows_total\""));
    assert!(json.contains("\"name\": \"spill_kmers_total\""));
    assert!(json.contains("\"name\": \"device_oom_events_total\""));
    assert!(json.contains("\"name\": \"hbm_high_water_bytes\""));
}

#[test]
fn malformed_mem_specs_exit_two_and_oom_is_a_clean_failure() {
    let dir = tmpdir("mem-bad");
    let fastq = dir.join("reads.fastq");
    assert!(dedukt()
        .args(["simulate", "ecoli", "--scale", "tiny", "--out"])
        .arg(&fastq)
        .status()
        .unwrap()
        .success());
    // (spec, message fragment): out-of-range knobs fail validation with
    // the run like every other ConfigError; unknown keys and junk
    // values fail at the parser.
    for (spec, needle) in [
        ("under=1.5", "must be in [0, 1]"),
        ("shrink=0", "must be in (0, 1]"),
        ("bogus=1", "unknown mem spec key"),
        ("afail=lots", "is not a number"),
        ("spill", "is not key=value"),
    ] {
        let out = dedukt()
            .args(["count"])
            .arg(&fastq)
            .args(["--mem-spec", spec])
            .output()
            .unwrap();
        assert_eq!(
            out.status.code(),
            Some(2),
            "spec {spec:?} must exit 2, got {:?}",
            out.status
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(needle),
            "spec {spec:?}: missing {needle:?} in\n{stderr}"
        );
    }
    // A nonsensical safety factor is rejected the same way.
    let out = dedukt()
        .args(["count"])
        .arg(&fastq)
        .args(["--table-safety", "0"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    // An unsurvivable plan (every allocation denied, ten spilled k-mers
    // allowed) is a clean exit-2 `DeviceOom`, not a panic, and names
    // the exhausted budget.
    let out = dedukt()
        .args(["count"])
        .arg(&fastq)
        .args([
            "--mode",
            "supermer",
            "--table-safety",
            "0.01",
            "--mem-spec",
            "afail=1,spill=10",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{:?}", out.status);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("device out of memory"),
        "missing DeviceOom message in\n{stderr}"
    );
    assert!(
        stderr.contains("spill budget exhausted"),
        "missing budget detail in\n{stderr}"
    );
}

#[test]
fn trace_flag_writes_chrome_trace() {
    let dir = tmpdir("trace");
    let fastq = dir.join("reads.fastq");
    let trace = dir.join("trace.json");
    assert!(dedukt()
        .args(["simulate", "paeruginosa", "--scale", "tiny", "--out"])
        .arg(&fastq)
        .status()
        .unwrap()
        .success());
    assert!(dedukt()
        .args(["count"])
        .arg(&fastq)
        .args(["--mode", "supermer", "--nodes", "2", "--trace"])
        .arg(&trace)
        .status()
        .unwrap()
        .success());
    let text = std::fs::read_to_string(&trace).unwrap();
    assert!(text.trim_start().starts_with('['));
    assert!(text.contains("\"name\": \"build-supermers\""));
    assert!(text.contains("\"name\": \"alltoallv\""));
    assert!(text.contains("\"name\": \"count\""));
    // One lane per rank: tid 0..11 all present.
    for tid in 0..12 {
        assert!(
            text.contains(&format!("\"tid\": {tid},")),
            "missing rank {tid}"
        );
    }
}

#[test]
fn unwritable_output_paths_exit_two_before_counting() {
    let dir = tmpdir("unwritable");
    let fastq = dir.join("reads.fastq");
    assert!(dedukt()
        .args(["simulate", "ecoli", "--scale", "tiny", "--out"])
        .arg(&fastq)
        .status()
        .unwrap()
        .success());
    // Every output flag is probed up front: a doomed path fails fast
    // with exit 2 naming the flag and the path — not after minutes of
    // counting, and never with a panic.
    let bad = "/nonexistent-dedukt-dir/out.file";
    for flag in ["--out", "--spectrum", "--trace", "--metrics", "--journal"] {
        let out = dedukt()
            .args(["count"])
            .arg(&fastq)
            .args([flag, bad])
            .output()
            .unwrap();
        assert_eq!(
            out.status.code(),
            Some(2),
            "{flag} {bad} must exit 2, got {:?}",
            out.status
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(flag) && stderr.contains(bad),
            "{flag}: error must name the flag and path:\n{stderr}"
        );
    }
}

#[test]
fn journal_flag_feeds_analyze_end_to_end() {
    let dir = tmpdir("journal");
    let fastq = dir.join("reads.fastq");
    assert!(dedukt()
        .args(["simulate", "ecoli", "--scale", "tiny", "--out"])
        .arg(&fastq)
        .status()
        .unwrap()
        .success());
    let clean = dir.join("clean.jsonl");
    let hostile = dir.join("hostile.jsonl");
    assert!(dedukt()
        .args(["count"])
        .arg(&fastq)
        .args(["--mode", "supermer", "--nodes", "2", "--journal"])
        .arg(&clean)
        .status()
        .unwrap()
        .success());
    let out = dedukt()
        .args(["count"])
        .arg(&fastq)
        .args([
            "--mode",
            "supermer",
            "--nodes",
            "2",
            "--fault-seed",
            "42",
            "--fault-spec",
            "fail=0.2,corrupt=0.1,retries=8",
            "--mem-seed",
            "5",
            "--mem-spec",
            "under=0.6,shrink=0.04,afail=0.4,spill=1048576",
            "--journal",
        ])
        .arg(&hostile)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The journal is JSONL: meta header first, run trailer last, and
    // the count digest points at the analyzer.
    let text = std::fs::read_to_string(&hostile).unwrap();
    assert!(text.lines().next().unwrap().starts_with("{\"ev\":\"meta\""));
    assert!(text.lines().last().unwrap().starts_with("{\"ev\":\"run\""));
    let diag = String::from_utf8_lossy(&out.stderr);
    assert!(diag.contains("wrote run journal"), "digest:\n{diag}");
    assert!(diag.contains("dedukt analyze"), "digest:\n{diag}");

    // `analyze` renders every report section for the hostile run.
    let report = dedukt().args(["analyze"]).arg(&hostile).output().unwrap();
    assert!(
        report.status.success(),
        "{}",
        String::from_utf8_lossy(&report.stderr)
    );
    let stdout = String::from_utf8_lossy(&report.stdout);
    for section in [
        "phase breakdown",
        "reconciliation",
        "critical path",
        "exchange",
        "recovery",
        "wall clock",
    ] {
        assert!(stdout.contains(section), "missing {section:?}:\n{stdout}");
    }

    // `analyze --diff` triages clean vs hostile.
    let diff = dedukt()
        .args(["analyze", "--diff"])
        .arg(&clean)
        .arg(&hostile)
        .output()
        .unwrap();
    assert!(
        diff.status.success(),
        "{}",
        String::from_utf8_lossy(&diff.stderr)
    );
    let diff_out = String::from_utf8_lossy(&diff.stdout);
    assert!(diff_out.contains("regressions:"), "diff:\n{diff_out}");

    // Misuse is a clean exit 2 with a pointed message.
    for (args, needle) in [
        (vec!["analyze"], "needs a journal path"),
        (
            vec!["analyze", "a.jsonl", "--diff", "b.jsonl", "c.jsonl"],
            "not both",
        ),
        (vec!["analyze", "/nonexistent.jsonl"], "/nonexistent.jsonl"),
    ] {
        let out = dedukt().args(&args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains(needle),
            "args {args:?}: missing {needle:?}"
        );
    }
}

#[test]
fn canonical_flag_shrinks_distinct_count() {
    let dir = tmpdir("canonical");
    let fastq = dir.join("reads.fastq");
    assert!(dedukt()
        .args(["simulate", "ecoli", "--scale", "tiny", "--out"])
        .arg(&fastq)
        .status()
        .unwrap()
        .success());
    let plain = dir.join("plain.tsv");
    let canon = dir.join("canon.tsv");
    assert!(dedukt()
        .args(["count"])
        .arg(&fastq)
        .args(["--mode", "gpu", "--out"])
        .arg(&plain)
        .status()
        .unwrap()
        .success());
    assert!(dedukt()
        .args(["count"])
        .arg(&fastq)
        .args(["--mode", "gpu", "--canonical", "--out"])
        .arg(&canon)
        .status()
        .unwrap()
        .success());
    let lines = |p: &PathBuf| std::fs::read_to_string(p).unwrap().lines().count();
    assert!(lines(&canon) < lines(&plain));
}

#[test]
fn rank_flags_recover_and_match_the_undisturbed_dump() {
    let dir = tmpdir("rank");
    let fastq = dir.join("reads.fastq");
    assert!(dedukt()
        .args(["simulate", "ecoli", "--scale", "tiny", "--out"])
        .arg(&fastq)
        .status()
        .unwrap()
        .success());
    let clean = dir.join("clean.tsv");
    assert!(dedukt()
        .args(["count"])
        .arg(&fastq)
        .args([
            "--mode",
            "supermer",
            "--nodes",
            "2",
            "--round-limit",
            "8192",
            "--out",
        ])
        .arg(&clean)
        .status()
        .unwrap()
        .success());

    // A pinned kill plus a checkpoint cadence: the survivor replays the
    // dead rank's range and the dump lands byte-identical.
    let killed = dir.join("killed.tsv");
    let metrics = dir.join("metrics.json");
    let out = dedukt()
        .args(["count"])
        .arg(&fastq)
        .args([
            "--mode",
            "supermer",
            "--nodes",
            "2",
            "--round-limit",
            "8192",
            "--rank-spec",
            "rate=0,kill=1:3",
            "--checkpoint-rounds",
            "2",
            "--out",
        ])
        .arg(&killed)
        .arg("--metrics")
        .arg(&metrics)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read_to_string(&clean).unwrap(),
        std::fs::read_to_string(&killed).unwrap(),
        "rank-death recovery must not change a single count"
    );
    let json = std::fs::read_to_string(&metrics).unwrap();
    assert!(json.contains("\"name\": \"rank_deaths_total\""));
    assert!(json.contains("\"name\": \"exchange_replay_bytes_total\""));
    assert!(json.contains("\"name\": \"recovery_seconds_total\""));

    // An elastic shrink-then-grow schedule lands on the same dump too.
    let rescaled = dir.join("rescaled.tsv");
    let out = dedukt()
        .args(["count"])
        .arg(&fastq)
        .args([
            "--mode",
            "supermer",
            "--nodes",
            "2",
            "--round-limit",
            "8192",
            "--rescale",
            "1:8,3:12",
            "--out",
        ])
        .arg(&rescaled)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read_to_string(&clean).unwrap(),
        std::fs::read_to_string(&rescaled).unwrap(),
        "elastic rescale must not change a single count"
    );
}

#[test]
fn malformed_rank_flags_exit_two_and_budget_exhaustion_is_clean() {
    let dir = tmpdir("rank-bad");
    let fastq = dir.join("reads.fastq");
    assert!(dedukt()
        .args(["simulate", "ecoli", "--scale", "tiny", "--out"])
        .arg(&fastq)
        .status()
        .unwrap()
        .success());
    // (args, message fragment): parser failures and validation failures
    // both surface as ConfigError-style exit 2s naming the value.
    for (args, needle) in [
        (vec!["--rank-spec", "rate=1.5"], "must be in [0, 1]"),
        (vec!["--rank-spec", "bogus=1"], "unknown rank spec key"),
        (vec!["--rank-spec", "kill=abc"], "not ROUND:RANK"),
        (vec!["--rank-spec", "rate=lots"], "rank spec"),
        (vec!["--rescale", "5"], "not round:world"),
        (vec!["--rescale", "a:1"], "not an integer"),
        (vec!["--rescale", "1:0"], "must be in 1..="),
        (vec!["--rescale", "1:4,1:5"], "strictly increasing"),
        (
            vec!["--checkpoint-rounds", "0"],
            "checkpoint cadence must be at least 1 round",
        ),
    ] {
        let out = dedukt()
            .args(["count"])
            .arg(&fastq)
            .args(&args)
            .output()
            .unwrap();
        assert_eq!(
            out.status.code(),
            Some(2),
            "args {args:?} must exit 2, got {:?}",
            out.status
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(needle),
            "args {args:?}: missing {needle:?} in\n{stderr}"
        );
    }
    // A plan that overruns its recovery budget is a clean exit-2
    // failure naming the budget, not a panic.
    let out = dedukt()
        .args(["count"])
        .arg(&fastq)
        .args(["--rank-spec", "rate=0,max-dead=1,kill=0:0,kill=0:1"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{:?}", out.status);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("recovery budget"),
        "missing budget message in\n{stderr}"
    );
}

#[test]
fn two_pass_flags_match_the_in_memory_dump_and_survive_faults() {
    let dir = tmpdir("two-pass");
    let fastq = dir.join("reads.fastq");
    assert!(dedukt()
        .args(["simulate", "ecoli", "--scale", "tiny", "--out"])
        .arg(&fastq)
        .status()
        .unwrap()
        .success());
    let clean = dir.join("clean.tsv");
    assert!(dedukt()
        .args(["count"])
        .arg(&fastq)
        .args(["--mode", "supermer", "--nodes", "2", "--out"])
        .arg(&clean)
        .status()
        .unwrap()
        .success());

    // A clean out-of-core run lands on the identical dump.
    let spooled = dir.join("spooled.tsv");
    let store = dir.join("store-clean");
    let out = dedukt()
        .args(["count"])
        .arg(&fastq)
        .args(["--mode", "supermer", "--nodes", "2", "--two-pass"])
        .arg(&store)
        .arg("--out")
        .arg(&spooled)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read_to_string(&clean).unwrap(),
        std::fs::read_to_string(&spooled).unwrap(),
        "spooling through the bin store must not change a single count"
    );

    // A hostile I/O plan recovers — retry, quarantine, re-derive — and
    // still lands on the identical dump, with recovery in --metrics.
    let damaged = dir.join("damaged.tsv");
    let metrics = dir.join("metrics.json");
    let store = dir.join("store-hostile");
    let out = dedukt()
        .args(["count"])
        .arg(&fastq)
        .args([
            "--mode",
            "supermer",
            "--nodes",
            "2",
            "--io-seed",
            "7",
            "--io-spec",
            "torn=0.05,rot=0.05,readerr=0.3,retries=8,rederive=8",
            "--two-pass",
        ])
        .arg(&store)
        .arg("--out")
        .arg(&damaged)
        .arg("--metrics")
        .arg(&metrics)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read_to_string(&clean).unwrap(),
        std::fs::read_to_string(&damaged).unwrap(),
        "storage-fault recovery must not change a single count"
    );
    let json = std::fs::read_to_string(&metrics).unwrap();
    assert!(json.contains("\"name\": \"storage_write_bytes_total\""));
    assert!(json.contains("\"name\": \"quarantined_bins_total\""));
    assert!(json.contains("\"name\": \"rederived_bins_total\""));

    // An injected kill mid-pass-2 exits 2 pointing at --resume, and the
    // resumed run finishes the remaining bins onto the identical dump.
    let resumed = dir.join("resumed.tsv");
    let store = dir.join("store-killed");
    let out = dedukt()
        .args(["count"])
        .arg(&fastq)
        .args([
            "--mode",
            "supermer",
            "--nodes",
            "2",
            "--io-spec",
            "torn=0,rot=0,readerr=0,kill=2",
            "--two-pass",
        ])
        .arg(&store)
        .arg("--out")
        .arg(&resumed)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{:?}", out.status);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--resume"),
        "kill must point at --resume:\n{stderr}"
    );
    let out = dedukt()
        .args(["count"])
        .arg(&fastq)
        .args([
            "--mode",
            "supermer",
            "--nodes",
            "2",
            "--resume",
            "--two-pass",
        ])
        .arg(&store)
        .arg("--out")
        .arg(&resumed)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read_to_string(&clean).unwrap(),
        std::fs::read_to_string(&resumed).unwrap(),
        "a resumed run must finish onto the identical dump"
    );

    // --min-count strictly shrinks the dump to >= N survivors.
    let filtered = dir.join("filtered.tsv");
    let store = dir.join("store-filtered");
    assert!(dedukt()
        .args(["count"])
        .arg(&fastq)
        .args([
            "--mode",
            "supermer",
            "--nodes",
            "2",
            "--min-count",
            "2",
            "--two-pass"
        ])
        .arg(&store)
        .arg("--out")
        .arg(&filtered)
        .status()
        .unwrap()
        .success());
    let lines = |p: &PathBuf| std::fs::read_to_string(p).unwrap().lines().count();
    assert!(lines(&filtered) < lines(&clean));
    for line in std::fs::read_to_string(&filtered).unwrap().lines() {
        let (_, count) = line.split_once('\t').unwrap();
        assert!(count.parse::<u32>().unwrap() >= 2);
    }
}

#[test]
fn malformed_two_pass_flags_exit_two_naming_the_flag() {
    let dir = tmpdir("two-pass-bad");
    let fastq = dir.join("reads.fastq");
    assert!(dedukt()
        .args(["simulate", "ecoli", "--scale", "tiny", "--out"])
        .arg(&fastq)
        .status()
        .unwrap()
        .success());
    let store = dir.join("store");
    // (extra args, message fragment): parser failures name --io-spec;
    // validation failures surface as ConfigError-style exit 2s, and
    // orphaned flags point at the --two-pass they require.
    let store_s = store.to_str().unwrap();
    for (args, needle) in [
        (
            vec!["--two-pass", store_s, "--io-spec", "bogus=1"],
            "unknown io spec key",
        ),
        (
            vec!["--two-pass", store_s, "--io-spec", "bogus=1"],
            "--io-spec",
        ),
        (
            vec!["--two-pass", store_s, "--io-spec", "torn=1.5"],
            "must be in [0, 1]",
        ),
        (
            vec!["--two-pass", store_s, "--io-spec", "kill=0"],
            "at least 1",
        ),
        (
            vec!["--two-pass", store_s, "--min-count", "0"],
            "--min-count",
        ),
        (vec!["--resume"], "--resume requires --two-pass"),
        (vec!["--io-seed", "7"], "require --two-pass"),
        (vec!["--min-count", "2"], "--min-count requires --two-pass"),
    ] {
        let out = dedukt()
            .args(["count"])
            .arg(&fastq)
            .args(&args)
            .output()
            .unwrap();
        assert_eq!(
            out.status.code(),
            Some(2),
            "args {args:?} must exit 2, got {:?}",
            out.status
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(needle),
            "args {args:?}: missing {needle:?} in\n{stderr}"
        );
    }
    // Resuming from a store nobody wrote is a clean exit 2, not a panic.
    let empty = dir.join("empty-store");
    let out = dedukt()
        .args(["count"])
        .arg(&fastq)
        .args(["--resume", "--two-pass"])
        .arg(&empty)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{:?}", out.status);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--resume") && stderr.contains("no manifest"),
        "missing resume guidance in\n{stderr}"
    );
}
