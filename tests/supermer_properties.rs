//! Property-based tests of the supermer machinery and packed k-mer core —
//! the invariants the whole paper rests on, under random inputs.

use dedukt::core::minimizer::{MinimizerScheme, OrderingKind};
use dedukt::core::supermer::{build_supermers_reference, build_supermers_windowed};
use dedukt::dna::kmer::{kmer_words, Kmer};
use dedukt::dna::Encoding;
use proptest::prelude::*;

fn encoding_strategy() -> impl Strategy<Value = Encoding> {
    prop_oneof![Just(Encoding::Alphabetical), Just(Encoding::PaperRandom)]
}

fn ordering_strategy() -> impl Strategy<Value = OrderingKind> {
    prop_oneof![
        Just(OrderingKind::EncodedLexicographic),
        Just(OrderingKind::Kmc2)
    ]
}

fn sorted_kmers(codes: &[u8], k: usize, enc: Encoding) -> Vec<u64> {
    let mut v: Vec<u64> = kmer_words(codes, k, enc).collect();
    v.sort_unstable();
    v
}

proptest! {
    /// The defining supermer invariant: re-extracting k-mers from the
    /// windowed supermers yields exactly the read's k-mer multiset.
    #[test]
    fn windowed_supermers_preserve_kmer_multiset(
        codes in prop::collection::vec(0u8..4, 0..300),
        k in 3usize..12,
        m in 2usize..6,
        window in 1usize..20,
        enc in encoding_strategy(),
        ord in ordering_strategy(),
    ) {
        prop_assume!(m < k);
        prop_assume!(window + k - 1 <= 32);
        let scheme = MinimizerScheme { encoding: enc, ordering: ord, m };
        let supermers = build_supermers_windowed(&codes, k, window, &scheme);
        let mut extracted: Vec<u64> = supermers.iter().flat_map(|s| s.kmers(k).collect::<Vec<_>>()).collect();
        extracted.sort_unstable();
        prop_assert_eq!(extracted, sorted_kmers(&codes, k, enc));
    }

    /// Same invariant for the unbounded reference builder.
    #[test]
    fn reference_supermers_preserve_kmer_multiset(
        codes in prop::collection::vec(0u8..4, 0..300),
        k in 3usize..12,
        m in 2usize..6,
        enc in encoding_strategy(),
    ) {
        prop_assume!(m < k);
        let scheme = MinimizerScheme { encoding: enc, ordering: OrderingKind::EncodedLexicographic, m };
        let supermers = build_supermers_reference(&codes, k, &scheme);
        let mut extracted: Vec<u64> = supermers
            .iter()
            .flat_map(|s| kmer_words(&s.codes, k, enc).collect::<Vec<_>>())
            .collect();
        extracted.sort_unstable();
        prop_assert_eq!(extracted, sorted_kmers(&codes, k, enc));
    }

    /// Every k-mer inside a supermer minimizes to the supermer's
    /// minimizer — the property that makes minimizer routing correct.
    #[test]
    fn supermer_minimizer_invariant(
        codes in prop::collection::vec(0u8..4, 0..200),
        k in 4usize..12,
        m in 2usize..6,
        window in 1usize..16,
        enc in encoding_strategy(),
        ord in ordering_strategy(),
    ) {
        prop_assume!(m < k);
        prop_assume!(window + k - 1 <= 32);
        let scheme = MinimizerScheme { encoding: enc, ordering: ord, m };
        for sm in build_supermers_windowed(&codes, k, window, &scheme) {
            for kw in sm.kmers(k) {
                prop_assert_eq!(scheme.minimizer_of(kw, k).word, sm.minimizer);
            }
        }
    }

    /// Adjacent reference supermers have different minimizers (maximality:
    /// the builder never splits a run it could have extended).
    #[test]
    fn reference_supermers_are_maximal(
        codes in prop::collection::vec(0u8..4, 0..200),
        k in 4usize..10,
        m in 2usize..5,
    ) {
        prop_assume!(m < k);
        let scheme = MinimizerScheme {
            encoding: Encoding::PaperRandom,
            ordering: OrderingKind::EncodedLexicographic,
            m,
        };
        let supermers = build_supermers_reference(&codes, k, &scheme);
        for pair in supermers.windows(2) {
            prop_assert_ne!(pair[0].minimizer, pair[1].minimizer);
        }
    }

    /// Packed k-mer roundtrip and reverse-complement involution under
    /// random sequences.
    #[test]
    fn kmer_roundtrip_and_rc(
        codes in prop::collection::vec(0u8..4, 1..33),
        enc in encoding_strategy(),
    ) {
        let kmer = Kmer::from_codes(&codes, enc);
        prop_assert_eq!(kmer.codes(enc), codes.clone());
        prop_assert_eq!(kmer.reverse_complement().reverse_complement(), kmer);
        // Canonical is idempotent and strand-invariant.
        let canon = kmer.canonical();
        prop_assert_eq!(canon.canonical(), canon);
        prop_assert_eq!(kmer.reverse_complement().canonical(), canon);
    }

    /// Rolling extraction equals window-by-window packing.
    #[test]
    fn rolling_matches_fresh_packing(
        codes in prop::collection::vec(0u8..4, 1..100),
        k in 1usize..20,
        enc in encoding_strategy(),
    ) {
        prop_assume!(k <= codes.len());
        let rolled: Vec<u64> = kmer_words(&codes, k, enc).collect();
        let fresh: Vec<u64> = (0..=codes.len() - k)
            .map(|i| Kmer::from_codes(&codes[i..i + k], enc).word())
            .collect();
        prop_assert_eq!(rolled, fresh);
    }

    /// Windowed supermer lengths always lie in `[k, window + k - 1]`.
    #[test]
    fn windowed_length_bounds(
        codes in prop::collection::vec(0u8..4, 0..300),
        k in 3usize..12,
        window in 1usize..20,
    ) {
        prop_assume!(window + k - 1 <= 32);
        let scheme = MinimizerScheme {
            encoding: Encoding::PaperRandom,
            ordering: OrderingKind::EncodedLexicographic,
            m: 2,
        };
        for sm in build_supermers_windowed(&codes, k, window, &scheme) {
            prop_assert!((k..=window + k - 1).contains(&(sm.len as usize)));
        }
    }
}
