//! Property tests of the hierarchical exchange and the wire codec
//! (DESIGN.md §10): for any combination of routing × compression ×
//! pipeline × key width × fault plan × overlap, the counted spectra are
//! bit-identical to the direct uncompressed reference — routing and
//! codec choices may only move simulated time and wire bytes, never
//! counts — and the per-tier byte accounting is exact everywhere it
//! surfaces. A cost-model unit test pins the crossover the ablation
//! demonstrates: aggregation wins at the paper's 2,688-rank CPU shape
//! and loses on two fat-payload GPU nodes.

mod common;

use common::{assert_counts_identical, spectrum_config, tiny_reads};
use dedukt::core::pipeline::{run_typed, RunError, RunReport};
use dedukt::core::{Mode, PackedKmer};
use dedukt::dna::ReadSet;
use dedukt::net::cost::{ExchangeAlgo, Network};
use dedukt::net::{FaultPlan, FaultSpec};
use dedukt::sim::SimTime;
use proptest::prelude::*;

/// Runs `mode` under (algo, compress) and checks it against the direct
/// uncompressed reference: identical spectra, exact tier accounting.
/// Returns false when the fault plan legitimately exhausted its retry
/// budget (a clean failure, which must be identical across routes).
#[allow(clippy::too_many_arguments)]
fn check_exchange_invariants<K: PackedKmer>(
    reads: &ReadSet,
    mode: Mode,
    nodes: usize,
    k: usize,
    algo: ExchangeAlgo,
    compress: bool,
    fault: Option<FaultPlan>,
    overlap: bool,
) -> bool {
    let mut reference = spectrum_config(mode, nodes, k);
    if overlap {
        reference.round_limit_bytes = Some(4096);
        reference.overlap_rounds = true;
    }
    let mut routed = reference.clone();
    let faulted_is_none = fault.is_none();
    reference.fault = fault;
    routed.fault = fault;
    routed.exchange_algo = algo;
    routed.wire_compress = compress;
    let (a, b) = (
        run_typed::<K>(reads, &reference),
        run_typed::<K>(reads, &routed),
    );
    let (a, b) = match (a, b) {
        (Ok(a), Ok(b)) => (a, b),
        // Retry exhaustion must be route-independent: the same plan
        // fails the same way under either routing.
        (Err(RunError::ExchangeFailed { .. }), Err(RunError::ExchangeFailed { .. })) => {
            return false;
        }
        (a, b) => panic!("routes disagree on failure: {:?} vs {:?}", a.err(), b.err()),
    };

    // The headline guarantee: nothing about what was counted changes —
    // routing never re-homes a range, so loads are pinned element-wise.
    assert_counts_identical(&b, &a);
    assert_eq!(b.load.kmers_per_rank, a.load.kmers_per_rank);
    assert_eq!(b.exchange.units, a.exchange.units);
    assert_eq!(b.exchange.rounds, a.exchange.rounds);

    // Exact tier accounting, both routes: the two tiers partition the
    // payload total, and the relay/coalescing fields exist exactly when
    // hierarchical routing is on (and the topology has > 1 node).
    for r in [&a, &b] {
        assert_eq!(
            r.exchange.intra_node_bytes + r.exchange.off_node_bytes,
            r.exchange.bytes
        );
    }
    match algo {
        ExchangeAlgo::Direct => {
            assert_eq!(b.exchange.intra_tier_bytes, 0);
            assert_eq!(b.exchange.coalesced_messages, 0);
        }
        ExchangeAlgo::NodeAggregated => {
            if nodes > 1 && b.exchange.off_node_bytes > 0 {
                assert!(
                    b.exchange.coalesced_messages > 0,
                    "off-node traffic must ride coalesced frames"
                );
                assert!(
                    b.exchange.intra_tier_bytes > 0,
                    "leader gather/scatter must move intra-tier bytes"
                );
            }
        }
    }
    // Fault-free, codec off (or a pipeline the codec doesn't touch —
    // the k-mer pipelines' words are already maximally packed): routing
    // moves payloads over different tiers but the off-node payload
    // volume itself is route-independent. Under faults the comparison
    // is void: frame-level and bucket-level retry fates legitimately
    // resend different volumes.
    if faulted_is_none && !(compress && mode == Mode::GpuSupermer) {
        assert_eq!(b.exchange.off_node_bytes, a.exchange.off_node_bytes);
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any pipeline, any routing, codec on or off, both key widths,
    /// any fault mix, overlapped or not: the spectrum never moves.
    #[test]
    fn routing_and_compression_never_change_counts(
        seed in 0u64..1_000_000,
        nodes in 1usize..4,
        mode_idx in 0usize..3,
        hierarchical in any::<bool>(),
        compress in any::<bool>(),
        faulty in any::<bool>(),
        overlap in any::<bool>(),
        wide in any::<bool>(),
    ) {
        let mode = [Mode::CpuBaseline, Mode::GpuKmer, Mode::GpuSupermer][mode_idx];
        let algo = if hierarchical {
            ExchangeAlgo::NodeAggregated
        } else {
            ExchangeAlgo::Direct
        };
        let fault = faulty.then(|| {
            let mut spec = FaultSpec::none();
            spec.fail_rate = 0.2;
            spec.corrupt_rate = 0.1;
            spec.straggle_rate = 0.1;
            spec.straggle_factor = 3.0;
            spec.max_retries = 6;
            spec.backoff_secs = 1e-4;
            FaultPlan::new(seed, spec)
        });
        let reads = tiny_reads();
        if wide {
            check_exchange_invariants::<u128>(
                &reads, mode, nodes, 41, algo, compress, fault, overlap,
            );
        } else {
            check_exchange_invariants::<u64>(
                &reads, mode, nodes, 17, algo, compress, fault, overlap,
            );
        }
    }
}

/// The full matrix at a pinned hostile seed, so the property above is
/// never vacuously green: every (route, codec) cell on every pipeline
/// survives real retries and lands on the same spectrum.
#[test]
fn pinned_hostile_matrix_is_bit_identical_everywhere() {
    let reads = tiny_reads();
    let spec = FaultSpec::parse("fail=0.2,corrupt=0.1,retries=8,backoff=1e-4").unwrap();
    for mode in [Mode::CpuBaseline, Mode::GpuKmer, Mode::GpuSupermer] {
        for algo in [ExchangeAlgo::Direct, ExchangeAlgo::NodeAggregated] {
            for compress in [false, true] {
                let survived = check_exchange_invariants::<u64>(
                    &reads,
                    mode,
                    2,
                    17,
                    algo,
                    compress,
                    Some(FaultPlan::new(42, spec)),
                    false,
                );
                assert!(
                    survived,
                    "{mode:?}/{algo:?}: seed 42 must survive 8 retries"
                );
            }
        }
    }
}

/// The §VI crossover, straight from the α-β cost model: aggregation's
/// message-count saving wins where software latency dominates (the
/// 2,688-rank Summit CPU shape on modest payloads) and its doubled
/// intra-node hop loses where bandwidth dominates (two GPU nodes
/// shipping fat payloads).
#[test]
fn cost_model_crossover_matches_the_paper_shape() {
    let max = |v: &[SimTime]| v.iter().copied().fold(SimTime::ZERO, SimTime::max);
    let uniform = |p: usize, bytes: u64| vec![vec![bytes; p]; p];

    // 64 Summit CPU nodes × 42 ranks = 2,688 ranks, 64 B per pair: the
    // per-message software latency dwarfs the payload.
    let p_cpu = 64 * 42;
    let small = uniform(p_cpu, 64);
    let mut net = Network::summit_cpu(64);
    net.params.algo = ExchangeAlgo::Direct;
    let direct = max(&net.alltoallv_times(&small));
    net.params.algo = ExchangeAlgo::NodeAggregated;
    let aggregated = max(&net.alltoallv_times(&small));
    assert!(
        aggregated < direct,
        "aggregation must win at the CPU shape: {aggregated} vs {direct}"
    );

    // 2 GPU nodes × 6 ranks = 12 ranks, 64 MiB per pair: the double
    // intra-node crossing costs more than 11 messages save.
    let p_gpu = 2 * 6;
    let big = uniform(p_gpu, 64 << 20);
    let mut net = Network::summit_gpu(2);
    net.params.algo = ExchangeAlgo::Direct;
    let direct = max(&net.alltoallv_times(&big));
    net.params.algo = ExchangeAlgo::NodeAggregated;
    let aggregated = max(&net.alltoallv_times(&big));
    assert!(
        direct < aggregated,
        "aggregation must lose on fat few-node payloads: {direct} vs {aggregated}"
    );
}

/// Overlap keeps its contract under hierarchical routing: each round
/// charges `intra + max(inject, hidden)`, so overlapping can only help,
/// and the functional results stay pinned to the non-overlapped run.
#[test]
fn overlap_composes_with_hierarchical_routing() {
    let reads = tiny_reads();
    let base = {
        let mut rc = spectrum_config(Mode::GpuSupermer, 2, 17);
        rc.exchange_algo = ExchangeAlgo::NodeAggregated;
        rc.wire_compress = true;
        rc.round_limit_bytes = Some(4096);
        rc
    };
    let plain = run_typed::<u64>(&reads, &base).expect("valid config");
    let mut overlapped_rc = base.clone();
    overlapped_rc.overlap_rounds = true;
    let overlapped = run_typed::<u64>(&reads, &overlapped_rc).expect("valid config");
    assert_eq!(overlapped.spectrum, plain.spectrum);
    assert_eq!(overlapped.exchange.bytes, plain.exchange.bytes);
    assert_eq!(
        overlapped.exchange.intra_tier_bytes,
        plain.exchange.intra_tier_bytes
    );
    assert!(
        overlapped.makespan <= plain.makespan,
        "hiding compute behind the wire cannot slow the run: {} vs {}",
        overlapped.makespan,
        plain.makespan
    );
}

#[test]
fn default_reports_carry_zero_tier_fields() {
    // The default (direct, uncompressed) path reports zeros for every
    // new field — pinning that the pre-routing schema is a strict
    // subset of this one.
    let reads = tiny_reads();
    let rc = spectrum_config(Mode::GpuSupermer, 2, 17);
    let r: RunReport = run_typed::<u64>(&reads, &rc).expect("valid config");
    assert_eq!(r.exchange.intra_tier_bytes, 0);
    assert_eq!(r.exchange.coalesced_messages, 0);
    assert_eq!(
        r.exchange.intra_node_bytes + r.exchange.off_node_bytes,
        r.exchange.bytes
    );
}
