//! Property tests of the out-of-core two-pass mode (DESIGN.md §12): for
//! any deterministic I/O fault plan, any engine, and either key width,
//! the two-pass spectrum is bit-identical to the single-pass in-memory
//! reference — or the run fails *cleanly* with `StorageFailed` once the
//! retry/re-derive budget is exhausted. Pass-1 bin placement is a true
//! partition, every planned bin fits the device table budget, and a
//! pinned hostile plan provably exercises the whole recovery ladder:
//! read retry, quarantine + re-derivation, and manifest resume.

mod common;

use common::{assert_counts_identical, instrumented_config, tiny_reads};
use dedukt::core::pipeline::two_pass::{plan_bins, BIN_SKEW_MARGIN};
use dedukt::core::pipeline::{run_typed, RunError, RunReport};
use dedukt::core::table::capacity_for;
use dedukt::core::{Mode, PackedKmer};
use dedukt::dna::ReadSet;
use dedukt::store::{BinStore, IoPlan, IoSpec};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::path::PathBuf;

/// A unique scratch store per case so suites (and proptest shrink
/// reruns) never trample each other's bins.
fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dedukt-two-pass-prop-{}-{tag}", std::process::id()))
}

/// Runs `mode` in-memory and out-of-core at width `K` under `plan`,
/// checking the headline invariant: identical counted results, or a
/// clean reported `StorageFailed` — never a panic, never silent drift.
/// When the plan kills the run mid-pass-2, resumes from the manifest
/// (same rates, kill disarmed) and holds the resumed run to the same
/// bit-identity bar. Returns the surviving two-pass report, if any.
fn check_two_pass<K: PackedKmer>(
    reads: &ReadSet,
    mode: Mode,
    nodes: usize,
    k: usize,
    plan: Option<IoPlan>,
    tag: &str,
) -> Option<RunReport<K>> {
    let mut rc = instrumented_config(mode, nodes, k);
    let clean = run_typed::<K>(reads, &rc).expect("in-memory run cannot fail");
    let dir = scratch(tag);
    let _ = std::fs::remove_dir_all(&dir);
    rc.two_pass_dir = Some(dir.clone());
    rc.io = plan;
    let result = match run_typed::<K>(reads, &rc) {
        Ok(r) => {
            assert_counts_identical(&r, &clean);
            // Telemetry agrees with the report wherever recovery shows.
            let snap = r.metrics.as_ref().expect("metrics requested");
            let has = |name: &str| snap.entries.iter().any(|e| e.name == name);
            assert!(has("storage_write_bytes_total"));
            assert!(has("storage_read_bytes_total"));
            assert_eq!(snap.counter_total("io_retries_total"), r.exchange.retries);
            assert_eq!(
                snap.counter_total("quarantined_bins_total"),
                r.exchange.corrupt_buckets
            );
            if r.exchange.retries == 0 && r.exchange.corrupt_buckets == 0 {
                assert!(
                    !has("recovery_seconds_total"),
                    "recovery-free run must not export recovery_seconds_total"
                );
                assert_eq!(r.exchange.recovery_time, dedukt::sim::SimTime::ZERO);
            } else {
                assert!(r.exchange.recovery_time > dedukt::sim::SimTime::ZERO);
            }
            Some(r)
        }
        Err(RunError::StorageFailed { detail, .. }) if detail.contains("injected kill") => {
            // The injected kill names the recovery path; take it. The
            // resumed run keeps the same fault rates but disarms the
            // kill, and must reproduce the reference spectrum exactly
            // (or exhaust its budget cleanly like any hostile run).
            assert!(detail.contains("--resume"), "kill must point at --resume");
            let mut spec = *rc.io.as_ref().expect("kill requires a plan").spec();
            let seed = rc.io.as_ref().unwrap().seed();
            spec.kill_after = None;
            rc.io = Some(IoPlan::new(seed, spec));
            rc.two_pass_resume = true;
            match run_typed::<K>(reads, &rc) {
                Ok(r) => {
                    assert_counts_identical(&r, &clean);
                    Some(r)
                }
                Err(RunError::StorageFailed { detail, .. }) => {
                    assert!(!detail.is_empty());
                    None
                }
                Err(other) => panic!("unexpected resume error: {other}"),
            }
        }
        // Exhausting the retry/re-derive budget is a legitimate clean
        // failure — but it must be *that* failure, with per-bin detail.
        Err(RunError::StorageFailed { detail, .. }) => {
            assert!(
                detail.contains("re-derive") || detail.contains("read attempt"),
                "budget exhaustion must say what ran out: {detail}"
            );
            None
        }
        Err(other) => panic!("unexpected run error: {other}"),
    };
    let _ = std::fs::remove_dir_all(&dir);
    result
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any engine, any I/O seed, any survivable-or-not fault mix, both
    /// key widths, fresh or killed-and-resumed: the out-of-core spectrum
    /// matches the in-memory reference bit for bit, or the run fails
    /// cleanly with a reported per-bin `StorageFailed`.
    #[test]
    fn two_pass_counts_exactly_like_the_in_memory_reference(
        seed in 0u64..1_000_000,
        nodes in 1usize..3,
        mode_idx in 0usize..3,
        torn in 0.0f64..0.05,
        rot in 0.0f64..0.05,
        readerr in 0.0f64..0.3,
        kill_idx in 0u64..4,
        wide in any::<bool>(),
    ) {
        let mode = [Mode::CpuBaseline, Mode::GpuKmer, Mode::GpuSupermer][mode_idx];
        let mut spec = IoSpec::none();
        spec.torn_rate = torn;
        spec.rot_rate = rot;
        spec.read_error_rate = readerr;
        spec.max_retries = 6;
        spec.max_rederives = 4;
        // 0 disarms the kill; 1..=3 kill after that many counted bins.
        spec.kill_after = (kill_idx > 0).then_some(kill_idx);
        let reads = tiny_reads();
        let plan = Some(IoPlan::new(seed, spec));
        let tag = format!("any-{seed}-{nodes}-{mode_idx}-{wide}");
        if wide {
            check_two_pass::<u128>(&reads, mode, nodes, 41, plan, &tag);
        } else {
            check_two_pass::<u64>(&reads, mode, nodes, 17, plan, &tag);
        }
    }

    /// Pass-1 placement is a partition: the manifest's per-bin instance
    /// counts conserve the reference total, and the union of the counted
    /// bins is — as a multiset — exactly the in-memory count table. Holds
    /// on every engine at either width, for any hash seed.
    #[test]
    fn pass_one_bin_placement_is_a_partition(
        hash_seed in 0u64..1_000_000,
        nodes in 1usize..3,
        mode_idx in 0usize..3,
        wide in any::<bool>(),
    ) {
        let mode = [Mode::CpuBaseline, Mode::GpuKmer, Mode::GpuSupermer][mode_idx];
        let reads = tiny_reads();
        let tag = format!("part-{hash_seed}-{nodes}-{mode_idx}-{wide}");
        if wide {
            check_partition::<u128>(&reads, mode, nodes, 41, hash_seed, &tag)?;
        } else {
            check_partition::<u64>(&reads, mode, nodes, 17, hash_seed, &tag)?;
        }
    }

    /// The bin planner's guarantee, checked directly over its whole
    /// domain: for any instance total, rank count, safety factor, load
    /// factor, device budget and slot width, every planned bin's
    /// worst-case table allocation fits the budget — unless splitting
    /// has reached one expected instance per bin — and the bin count is
    /// always a power-of-two multiple of the rank count.
    #[test]
    fn planned_bins_always_fit_the_device_budget(
        total in 0u64..50_000_000,
        nranks in 1usize..256,
        safety in 0.25f64..4.0,
        lf in 0.3f64..0.9,
        budget_pow in 10u32..34,
        slot in 8u64..24,
    ) {
        let budget = 1u64 << budget_pow;
        let nbins = plan_bins(total, nranks, safety, lf, budget, slot);
        prop_assert!(nbins >= nranks);
        prop_assert!(nbins.is_multiple_of(nranks));
        prop_assert!((nbins / nranks).is_power_of_two());
        let per_bin = (total as f64 / nbins as f64) * BIN_SKEW_MARGIN;
        let expected = (per_bin * safety.max(1.0)).ceil().max(1.0) as usize;
        let table_bytes = capacity_for(expected, lf) as u64 * slot;
        prop_assert!(
            table_bytes <= budget || per_bin <= 1.0,
            "planned bin table ({table_bytes} B) exceeds budget ({budget} B) \
             with {per_bin:.1} expected instances per bin"
        );
    }

    /// Gerbil-style `--min-count` pre-filter conserves instances: what
    /// the filter drops plus what survives equals the unfiltered total,
    /// and nothing below the threshold reaches the spectrum.
    #[test]
    fn min_count_filter_conserves_instances(
        min_count in 2u32..5,
        mode_idx in 0usize..3,
        nodes in 1usize..3,
    ) {
        let mode = [Mode::CpuBaseline, Mode::GpuKmer, Mode::GpuSupermer][mode_idx];
        let reads = tiny_reads();
        let mut rc = instrumented_config(mode, nodes, 17);
        let clean = run_typed::<u64>(&reads, &rc).expect("in-memory run cannot fail");
        let dir = scratch(&format!("minc-{min_count}-{mode_idx}-{nodes}"));
        let _ = std::fs::remove_dir_all(&dir);
        rc.two_pass_dir = Some(dir.clone());
        rc.min_count = min_count;
        let filtered = run_typed::<u64>(&reads, &rc).expect("clean plan cannot fail");
        let _ = std::fs::remove_dir_all(&dir);
        let snap = filtered.metrics.as_ref().expect("metrics requested");
        let dropped = snap.counter_total("filtered_kmer_instances_total");
        prop_assert_eq!(filtered.total_kmers + dropped, clean.total_kmers);
        prop_assert_eq!(
            filtered.distinct_kmers + snap.counter_total("filtered_kmers_total"),
            clean.distinct_kmers
        );
        let spectrum = filtered.spectrum.as_ref().expect("spectrum requested");
        prop_assert!(
            spectrum.iter().all(|(count, _)| count >= min_count),
            "a count below --min-count leaked into the spectrum"
        );
    }
}

/// The partition body shared by both key widths: clean two-pass run,
/// manifest conservation, and multiset equality of the counted tables.
fn check_partition<K: PackedKmer>(
    reads: &ReadSet,
    mode: Mode,
    nodes: usize,
    k: usize,
    hash_seed: u64,
    tag: &str,
) -> Result<(), TestCaseError> {
    let mut rc = instrumented_config(mode, nodes, k);
    rc.counting.hash_seed = hash_seed;
    let clean = run_typed::<K>(reads, &rc).expect("in-memory run cannot fail");
    let dir = scratch(tag);
    let _ = std::fs::remove_dir_all(&dir);
    rc.two_pass_dir = Some(dir.clone());
    let two = run_typed::<K>(reads, &rc).expect("clean plan cannot fail");
    let store = BinStore::create(&dir).expect("store exists");
    let manifest = store
        .read_manifest()
        .expect("manifest readable")
        .expect("manifest written");
    let _ = std::fs::remove_dir_all(&dir);
    // Conservation: every k-mer instance was placed in exactly one bin.
    let placed: u64 = manifest.bins.iter().map(|b| b.instances).sum();
    prop_assert_eq!(placed, clean.total_kmers);
    // Disjointness + exactness: the union of the per-bin tables is the
    // in-memory count table, as a multiset of (key, count) pairs.
    let flatten = |r: &RunReport<K>| {
        let mut all: Vec<(K, u32)> = r
            .tables
            .as_ref()
            .expect("tables requested")
            .iter()
            .flatten()
            .copied()
            .collect();
        all.sort_unstable();
        all
    };
    prop_assert_eq!(flatten(&two), flatten(&clean));
    assert_counts_identical(&two, &clean);
    Ok(())
}

/// The acceptance pin: a hostile plan that provably walks the entire
/// recovery ladder on the supermer engine — transient read retries,
/// quarantine + re-derivation of damaged generations — and still lands
/// bit-identical on the in-memory reference; then the same plan with an
/// injected kill proves the manifest resume path end to end.
#[test]
fn pinned_hostile_plan_exercises_retry_rederive_and_resume() {
    let reads = tiny_reads();
    let spec =
        IoSpec::parse("torn=0.05,rot=0.05,readerr=0.3,retries=8,rederive=8").expect("valid spec");
    let survived = check_two_pass::<u64>(
        &reads,
        Mode::GpuSupermer,
        2,
        17,
        Some(IoPlan::new(7, spec)),
        "pinned-hostile",
    )
    .expect("seed 7 must survive 8 retries / 8 re-derives at these rates");
    assert!(
        survived.exchange.retries > 0,
        "seed 7 must actually retry a transient read error"
    );
    assert!(
        survived.exchange.corrupt_buckets > 0,
        "seed 7 must actually quarantine and re-derive a damaged bin"
    );
    assert!(survived.exchange.replayed_bytes > 0);

    // Same plan, kill armed: pass 2 dies after two bins pointing at
    // --resume, and check_two_pass's resume leg must reproduce the
    // reference spectrum from the manifest.
    let mut killer = spec;
    killer.kill_after = Some(2);
    let resumed = check_two_pass::<u64>(
        &reads,
        Mode::GpuSupermer,
        2,
        17,
        Some(IoPlan::new(7, killer)),
        "pinned-kill",
    )
    .expect("seed 7 must survive the resumed run too");
    assert_eq!(resumed.spectrum, survived.spectrum);
}

/// An unsurvivable plan (every read attempt errors, no re-derive
/// budget) is a clean, per-bin-reported error on every engine — never a
/// panic, never a hang, never a partial spectrum.
#[test]
fn exhausted_storage_budget_fails_cleanly_on_every_engine() {
    let reads = tiny_reads();
    let mut spec = IoSpec::none();
    spec.read_error_rate = 1.0;
    spec.max_retries = 2;
    spec.max_rederives = 1;
    for mode in [Mode::CpuBaseline, Mode::GpuKmer, Mode::GpuSupermer] {
        let dir = scratch(&format!("exhaust-{}", mode.label()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut rc = instrumented_config(mode, 1, 17);
        rc.two_pass_dir = Some(dir.clone());
        rc.io = Some(IoPlan::new(3, spec));
        match run_typed::<u64>(&reads, &rc) {
            Err(RunError::StorageFailed { bin, detail }) => {
                assert_eq!(bin, 0, "mode {mode:?}: the first bin is unreadable");
                assert!(detail.contains("re-derive"), "mode {mode:?}: {detail}");
            }
            other => panic!("mode {mode:?}: expected StorageFailed, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
