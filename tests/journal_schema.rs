//! Golden tests for the run journal (`--journal` / `dedukt analyze`):
//! the event vocabulary is a schema the offline analyzer keys on, so
//! this file pins it, pins the zero-observer-effect guarantee (a run
//! without a journal is bit-identical to one with it), and pins the
//! accounting the analyzer's invariant check relies on — journal phase
//! totals reconcile *exactly* with the report and the metrics gauges,
//! and `critical path ≤ makespan ≤ total rank-seconds` holds under
//! overlap, faults, and memory pressure alike.

use dedukt::core::pipeline::{run, RunReport};
use dedukt::core::{Mode, RunConfig};
use dedukt::dna::{Dataset, DatasetId, ReadSet, ScalePreset};
use dedukt::gpu::{MemPlan, MemSpec};
use dedukt::net::{FaultPlan, FaultSpec, RankPlan, RankSpec};
use dedukt::sim::{analyze, JournalEvent, MetricValue};
use std::collections::BTreeSet;

fn tiny_reads() -> ReadSet {
    Dataset::new(DatasetId::EColi30x, ScalePreset::Tiny).generate()
}

/// A fault plan that actually retries, a memory plan that actually
/// fires regrow + spill + denied-grow recovery on the tiny slice (the
/// distinct-key count per rank is far below the instance count, so the
/// shrink factor must be harsh before the estimate-sized table
/// overflows), and a rank plan + rescale schedule that kill a rank and
/// shrink the world — the round cap forces enough exchange rounds for
/// both boundary events to fire.
fn hostile_config(mode: Mode) -> RunConfig {
    let mut rc = RunConfig::new(mode, 2);
    rc.collect_journal = true;
    rc.round_limit_bytes = Some(4096);
    rc.fault = Some(FaultPlan::new(
        42,
        FaultSpec::parse("fail=0.2,corrupt=0.1,retries=8").unwrap(),
    ));
    rc.mem = Some(MemPlan::new(
        5,
        MemSpec::parse("under=0.6,shrink=0.04,afail=0.4,spill=1048576").unwrap(),
    ));
    rc.rank = Some(RankPlan::new(
        9,
        RankSpec::parse("rate=0,kill=1:1").unwrap(),
    ));
    rc.checkpoint_rounds = Some(2);
    rc.rescale = vec![(2, 10)];
    rc
}

/// Every `ev` kind the pipelines may emit. Renaming or adding one is a
/// breaking change for `dedukt analyze` — update DESIGN.md §9 alongside
/// this list.
const EVENT_KINDS: &[&str] = &[
    "meta",
    "span",
    "collective",
    "retry",
    "regrow",
    "spill",
    "oom",
    "rankdead",
    "rescale",
    "io",
    "phase",
    "wall",
    "run",
];

/// A two-pass run whose io plan provably damages bins (quarantine +
/// re-derive) and draws transient read errors (io retries), with budgets
/// big enough to survive. Seed pinned — the draws are deterministic.
fn hostile_two_pass_config(mode: Mode) -> RunConfig {
    let mut rc = RunConfig::new(mode, 2);
    rc.collect_journal = true;
    rc.two_pass_dir = Some(std::env::temp_dir().join(format!(
        "dedukt-journal-two-pass-{}-{}",
        std::process::id(),
        mode.label()
    )));
    rc.io = Some(dedukt::store::IoPlan::new(
        7,
        dedukt::store::IoSpec::parse("torn=0.05,rot=0.05,readerr=0.3,retries=8,rederive=8")
            .unwrap(),
    ));
    rc
}

#[test]
fn journal_event_vocabulary_is_pinned() {
    let reads = tiny_reads();
    let report = run(&reads, &hostile_config(Mode::GpuSupermer)).expect("survivable plans");
    let events = report.journal.as_ref().expect("journal requested");

    // The out-of-core lane is the only emitter of `io` events; union its
    // hostile run into the coverage check.
    let tp_rc = hostile_two_pass_config(Mode::GpuSupermer);
    let tp = run(&reads, &tp_rc).expect("survivable io plan");
    std::fs::remove_dir_all(tp_rc.two_pass_dir.as_ref().unwrap()).ok();
    let tp_events = tp.journal.as_ref().expect("journal requested");

    let kinds: BTreeSet<&str> = events.iter().chain(tp_events).map(|e| e.kind()).collect();
    for k in &kinds {
        assert!(EVENT_KINDS.contains(k), "unknown event kind {k:?}");
    }
    // The two hostile runs together exercise the whole vocabulary.
    for k in EVENT_KINDS {
        assert!(kinds.contains(k), "hostile runs emitted no {k:?} events");
    }

    // The io lane itself covers its whole op vocabulary, and the
    // two-pass meta header names the out-of-core knobs.
    let ops: BTreeSet<&str> = tp_events
        .iter()
        .filter_map(|e| match e {
            JournalEvent::Io { op, .. } => Some(op.as_str()),
            _ => None,
        })
        .collect();
    for op in ["write", "read", "retry", "quarantine", "rederive"] {
        assert!(
            ops.contains(op),
            "hostile two-pass run emitted no {op:?} io events"
        );
    }
    match &tp_events[0] {
        JournalEvent::Meta { detail, .. } => {
            assert!(
                detail.contains("two-pass"),
                "detail missing two-pass: {detail}"
            );
            assert!(detail.contains("io["), "detail missing io spec: {detail}");
        }
        other => panic!("first event is {other:?}"),
    }

    // Envelope: exactly one meta first, exactly one run trailer last.
    assert_eq!(events.first().map(|e| e.kind()), Some("meta"));
    assert_eq!(events.last().map(|e| e.kind()), Some("run"));
    assert_eq!(events.iter().filter(|e| e.kind() == "meta").count(), 1);
    assert_eq!(events.iter().filter(|e| e.kind() == "run").count(), 1);

    // The meta header carries the run configuration for the report.
    match &events[0] {
        JournalEvent::Meta {
            mode,
            nodes,
            nranks,
            detail,
        } => {
            assert_eq!(mode, "gpu-supermer");
            assert_eq!(*nodes, 2);
            assert_eq!(*nranks, report.nranks);
            assert!(
                detail.contains("fault["),
                "detail missing fault spec: {detail}"
            );
            assert!(detail.contains("mem["), "detail missing mem spec: {detail}");
            assert!(
                detail.contains("rank["),
                "detail missing rank spec: {detail}"
            );
            assert!(
                detail.contains("checkpoint-rounds=2") && detail.contains("rescale=2:10"),
                "detail missing recovery knobs: {detail}"
            );
        }
        other => panic!("first event is {other:?}"),
    }
}

#[test]
fn journal_roundtrips_through_jsonl_bit_exactly() {
    let reads = tiny_reads();
    let report = run(&reads, &hostile_config(Mode::GpuKmer)).expect("survivable plans");
    let events = report.journal.expect("journal requested");
    let mut buf = Vec::new();
    dedukt::sim::write_journal(&mut buf, &events).unwrap();
    let parsed = dedukt::sim::read_journal(std::str::from_utf8(&buf).unwrap()).unwrap();
    assert_eq!(parsed, events, "JSONL round-trip must be lossless");
}

#[test]
fn journal_off_runs_are_bit_identical() {
    let reads = tiny_reads();
    for mode in [Mode::CpuBaseline, Mode::GpuKmer, Mode::GpuSupermer] {
        let mut rc = RunConfig::new(mode, 2);
        rc.collect_trace = true;
        let off = run(&reads, &rc).expect("valid config");
        rc.collect_journal = true;
        let on = run(&reads, &rc).expect("valid config");
        assert!(off.journal.is_none());
        assert!(on.journal.is_some());
        assert_eq!(off.phases.parse, on.phases.parse, "mode {mode:?}");
        assert_eq!(off.phases.exchange, on.phases.exchange, "mode {mode:?}");
        assert_eq!(off.phases.count, on.phases.count, "mode {mode:?}");
        assert_eq!(off.makespan, on.makespan, "mode {mode:?}");
        assert_eq!(off.total_kmers, on.total_kmers);
        assert_eq!(off.distinct_kmers, on.distinct_kmers);
        assert_eq!(off.exchange.bytes, on.exchange.bytes);
        assert_eq!(off.load.kmers_per_rank, on.load.kmers_per_rank);
        // Even the simulated timeline is untouched by the observer.
        assert_eq!(off.trace, on.trace, "mode {mode:?}");
        assert_eq!(off.trace_counters, on.trace_counters, "mode {mode:?}");
    }
}

/// The analyzer's reconciliation is *exact*, not epsilon-close: the
/// journal's phase events, the report's phase breakdown, and the
/// `phase_seconds:*` metrics gauges all come from the same accumulators.
#[test]
fn journal_phases_reconcile_exactly_with_report_and_metrics() {
    let reads = tiny_reads();
    for mode in [Mode::CpuBaseline, Mode::GpuKmer, Mode::GpuSupermer] {
        let mut rc = RunConfig::new(mode, 2);
        rc.collect_journal = true;
        rc.collect_metrics = true;
        let report = run(&reads, &rc).expect("valid config");
        let a = analyze(report.journal.as_ref().unwrap()).expect("well-formed journal");
        a.check_invariants().expect("journal accounting reconciles");

        assert_eq!(a.phase("parse"), report.phases.parse.as_secs(), "{mode:?}");
        assert_eq!(
            a.phase("exchange"),
            report.phases.exchange.as_secs(),
            "{mode:?}"
        );
        assert_eq!(a.phase("count"), report.phases.count.as_secs(), "{mode:?}");
        assert_eq!(a.makespan, report.makespan.as_secs(), "{mode:?}");

        let snap = report.metrics.as_ref().unwrap();
        for (name, phase) in [
            ("phase_seconds:parse", "parse"),
            ("phase_seconds:exchange", "exchange"),
            ("phase_seconds:count", "count"),
        ] {
            match snap.get(name, None) {
                Some(MetricValue::Gauge(g)) => assert_eq!(*g, a.phase(phase), "{mode:?} {name}"),
                other => panic!("{mode:?}: {name} is {other:?}"),
            }
        }
        match snap.get("makespan_seconds", None) {
            Some(MetricValue::Gauge(g)) => assert_eq!(*g, a.makespan, "{mode:?}"),
            other => panic!("{mode:?}: makespan_seconds is {other:?}"),
        }

        // The wall lane is nondeterministic but internally consistent:
        // four stages, all finite and non-negative, totalled in the
        // report, the journal, and the metrics alike.
        assert_eq!(a.wall.len(), 4, "{mode:?}");
        assert_eq!(a.wall_stage("total"), report.wall.total, "{mode:?}");
        assert!(report.wall.total > 0.0, "{mode:?}");
        assert!(
            report.wall.parse + report.wall.rounds + report.wall.finish <= report.wall.total,
            "{mode:?}: stage walls exceed the run wall"
        );
        match snap.get("wall_seconds:total", None) {
            Some(MetricValue::Gauge(g)) => assert_eq!(*g, report.wall.total, "{mode:?}"),
            other => panic!("{mode:?}: wall_seconds:total is {other:?}"),
        }
    }
}

/// The DAG invariants hold under every scheduling regime, not just the
/// clean path: memory-bounded rounds, overlapped rounds, faults, and
/// memory pressure.
#[test]
fn critical_path_invariants_hold_under_every_regime() {
    let reads = tiny_reads();
    let mut configs: Vec<(String, RunConfig)> = Vec::new();
    for mode in [Mode::CpuBaseline, Mode::GpuKmer, Mode::GpuSupermer] {
        let mut clean = RunConfig::new(mode, 2);
        clean.collect_journal = true;
        configs.push((format!("{mode:?} clean"), clean));
        configs.push((format!("{mode:?} hostile"), hostile_config(mode)));

        let mut rounds = RunConfig::new(mode, 2);
        rounds.collect_journal = true;
        rounds.round_limit_bytes = Some(4096);
        configs.push((format!("{mode:?} rounds"), rounds));

        let mut overlap = RunConfig::new(mode, 2);
        overlap.collect_journal = true;
        overlap.round_limit_bytes = Some(4096);
        overlap.overlap_rounds = true;
        configs.push((format!("{mode:?} overlap"), overlap));
    }
    for (tag, rc) in configs {
        let report = run(&reads, &rc).expect("survivable config");
        let a = analyze(report.journal.as_ref().unwrap()).expect("well-formed journal");
        a.check_invariants()
            .unwrap_or_else(|e| panic!("{tag}: {e}"));
        assert!(
            a.critical_len <= a.makespan + 1e-12,
            "{tag}: critical path {} > makespan {}",
            a.critical_len,
            a.makespan
        );
        assert!(
            a.makespan <= a.total_rank_seconds + 1e-12,
            "{tag}: makespan {} > rank-seconds {}",
            a.makespan,
            a.total_rank_seconds
        );
        assert!(!a.critical_path.is_empty(), "{tag}: empty critical path");
        // The critical path segments chain contiguously in time.
        for w in a.critical_path.windows(2) {
            assert!(
                w[1].start >= w[0].start + w[0].duration - 1e-9,
                "{tag}: critical path segments overlap"
            );
        }
    }
}

/// Recovery accounting: the hostile run's retry, regrow, spill, and OOM
/// events in the journal agree with the report's exchange summary and
/// are attributed to real ranks.
#[test]
fn recovery_events_reconcile_with_the_report() {
    let reads = tiny_reads();
    let report = run(&reads, &hostile_config(Mode::GpuSupermer)).expect("survivable plans");
    let a = analyze(report.journal.as_ref().unwrap()).expect("well-formed journal");

    // Each journal retry event carries the failed + corrupt bucket
    // counts that forced it; their sum is exactly what the exchange
    // summary calls `retries`.
    let redelivered: u64 = a.retries.iter().map(|r| r.2 + r.3).sum();
    assert_eq!(
        redelivered, report.exchange.retries,
        "journal retry events must account for every redelivered bucket"
    );
    assert!(a.retry_attempts() > 0, "hostile fault plan forces retries");
    assert!(a.backoff_seconds() > 0.0, "retries charge backoff time");
    assert!(a.regrow_count() > 0, "hostile mem plan fires regrows");
    assert!(a.spilled_kmers() > 0, "hostile mem plan fires spills");
    assert!(
        !a.ooms.is_empty(),
        "hostile mem plan denies at least one grow"
    );
    for (rank, _) in a.regrows.iter().chain(&a.spills) {
        assert!(*rank < report.nranks);
    }
}

/// Collective events carry the exchange tier (`intra` | `inject`) and
/// the physical `comp_bytes` next to the logical `bytes`: direct
/// uncompressed runs stay single-tier with the two byte counts equal
/// (the legacy schema, now explicit), hierarchical + `--wire-compress`
/// runs split into both tiers with the codec undercutting the logical
/// injection volume — and the analyzer reconciles either shape.
#[test]
fn collective_events_carry_tier_and_comp_bytes() {
    let reads = tiny_reads();
    let tiers = |r: &RunReport| -> Vec<(String, u64, u64)> {
        r.journal
            .as_ref()
            .unwrap()
            .iter()
            .filter_map(|e| match e {
                JournalEvent::Collective {
                    tier,
                    bytes,
                    comp_bytes,
                    ..
                } => Some((tier.clone(), *bytes, *comp_bytes)),
                _ => None,
            })
            .collect()
    };

    let mut rc = RunConfig::new(Mode::GpuSupermer, 2);
    rc.collect_journal = true;
    let direct = run(&reads, &rc).expect("valid config");
    let d = tiers(&direct);
    assert!(!d.is_empty(), "supermer run emits collective events");
    for (tier, bytes, comp) in &d {
        assert_eq!(tier, "inject", "direct routing is single-tier");
        assert_eq!(comp, bytes, "no codec: physical equals logical");
    }

    rc.exchange_algo = dedukt::net::cost::ExchangeAlgo::NodeAggregated;
    rc.wire_compress = true;
    let routed = run(&reads, &rc).expect("valid config");
    assert_eq!(routed.total_kmers, direct.total_kmers);
    assert_eq!(routed.distinct_kmers, direct.distinct_kmers);
    let h = tiers(&routed);
    let seen: BTreeSet<&str> = h.iter().map(|(t, ..)| t.as_str()).collect();
    assert_eq!(
        seen,
        BTreeSet::from(["intra", "inject"]),
        "hierarchical runs emit both tiers and nothing else"
    );
    let (mut logical, mut physical) = (0u64, 0u64);
    for (tier, bytes, comp) in &h {
        if tier == "inject" {
            logical += bytes;
            physical += comp;
        }
    }
    assert!(
        physical < logical,
        "codec must shrink the injection tier: {physical} physical vs {logical} logical"
    );

    let a = analyze(routed.journal.as_ref().unwrap()).expect("well-formed journal");
    a.check_invariants().expect("tiered journal reconciles");
    assert!(a.intra_seconds() > 0.0, "intra tier charges time");
    assert!(a.inject_seconds() > 0.0, "injection tier charges time");
    assert_eq!(a.exchange_comp_bytes(), physical);
}

/// The `hbm bytes` trace-counter lane only exists when pressure actually
/// fired: zero-pressure traces stay byte-identical to the pre-lane
/// schema.
#[test]
fn hbm_trace_lane_is_gated_on_pressure() {
    let reads = tiny_reads();
    let mut rc = RunConfig::new(Mode::GpuSupermer, 2);
    rc.collect_trace = true;
    let clean = run(&reads, &rc).expect("valid config");
    let lanes = |r: &RunReport| -> BTreeSet<String> {
        r.trace_counters
            .as_ref()
            .unwrap()
            .iter()
            .map(|c| c.name.clone())
            .collect()
    };
    assert!(
        !lanes(&clean).contains("hbm bytes"),
        "zero-pressure trace must not grow an hbm lane"
    );

    let mut hostile = hostile_config(Mode::GpuSupermer);
    hostile.collect_trace = true;
    hostile.fault = None;
    let pressured = run(&reads, &hostile).expect("survivable plan");
    assert!(
        lanes(&pressured).contains("hbm bytes"),
        "pressured trace carries the hbm lane"
    );
    let samples: Vec<_> = pressured
        .trace_counters
        .as_ref()
        .unwrap()
        .iter()
        .filter(|c| c.name == "hbm bytes")
        .collect();
    assert!(!samples.is_empty());
    for s in &samples {
        assert!(s.rank < pressured.nranks);
        assert!(s.value > 0.0, "hbm samples are high-water bytes");
    }
}
