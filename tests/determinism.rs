//! Determinism guarantees across repeated runs.
//!
//! Thread blocks execute concurrently, so *slot layouts* inside the
//! device tables (and hence iteration order, and the handful of
//! probe-count cost tallies) may differ between runs — exactly as on a
//! real GPU. Everything a user consumes must not: counts, volumes,
//! loads, spectra, and the generated datasets themselves.

use dedukt::core::{pipeline, Mode, RunConfig};
use dedukt::dna::{Dataset, DatasetId, ScalePreset};

fn sorted_tables(r: &dedukt::core::RunReport) -> Vec<Vec<(u64, u32)>> {
    r.tables
        .as_ref()
        .unwrap()
        .iter()
        .map(|t| {
            let mut t = t.clone();
            t.sort_unstable();
            t
        })
        .collect()
}

#[test]
fn dataset_generation_is_bit_stable() {
    for id in DatasetId::ALL {
        let d = Dataset::new(id, ScalePreset::Tiny);
        assert_eq!(d.generate(), d.generate(), "{id:?}");
    }
}

#[test]
fn pipeline_results_are_stable_across_runs() {
    let reads = Dataset::new(DatasetId::EColi30x, ScalePreset::Tiny).generate();
    for mode in [Mode::CpuBaseline, Mode::GpuKmer, Mode::GpuSupermer] {
        let mut rc = RunConfig::new(mode, 2);
        rc.collect_tables = true;
        rc.collect_spectrum = true;
        let a = pipeline::run(&reads, &rc).expect("valid config");
        let b = pipeline::run(&reads, &rc).expect("valid config");
        assert_eq!(a.total_kmers, b.total_kmers, "{mode:?}");
        assert_eq!(a.distinct_kmers, b.distinct_kmers, "{mode:?}");
        assert_eq!(a.exchange.units, b.exchange.units, "{mode:?}");
        assert_eq!(a.exchange.bytes, b.exchange.bytes, "{mode:?}");
        assert_eq!(
            a.exchange.off_node_bytes, b.exchange.off_node_bytes,
            "{mode:?}"
        );
        assert_eq!(a.load.kmers_per_rank, b.load.kmers_per_rank, "{mode:?}");
        assert_eq!(a.spectrum, b.spectrum, "{mode:?}");
        assert_eq!(sorted_tables(&a), sorted_tables(&b), "{mode:?}");
        // Exchange wire time is a pure function of the (deterministic)
        // volumes — it must be bit-identical too.
        assert_eq!(
            a.exchange.alltoallv_time.as_secs(),
            b.exchange.alltoallv_time.as_secs(),
            "{mode:?}"
        );
    }
}

#[test]
fn cpu_pipeline_times_are_fully_deterministic() {
    // The CPU baseline has no concurrent-insert tallies, so even its
    // simulated phase times must be bit-identical.
    let reads = Dataset::new(DatasetId::ABaumannii30x, ScalePreset::Tiny).generate();
    let rc = RunConfig::new(Mode::CpuBaseline, 1);
    let a = pipeline::run(&reads, &rc).expect("valid config");
    let b = pipeline::run(&reads, &rc).expect("valid config");
    assert_eq!(a.phases.parse.as_secs(), b.phases.parse.as_secs());
    assert_eq!(a.phases.exchange.as_secs(), b.phases.exchange.as_secs());
    assert_eq!(a.phases.count.as_secs(), b.phases.count.as_secs());
    assert_eq!(a.makespan.as_secs(), b.makespan.as_secs());
}
