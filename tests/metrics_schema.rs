//! Golden tests for the `--metrics` export surface: the metric names and
//! totals form a schema that downstream dashboards key on, so this file
//! pins them. It also pins the zero-observer-effect guarantee: enabling
//! telemetry must not move a single simulated timestamp.

use dedukt::core::pipeline::{run, RunReport};
use dedukt::core::{Mode, RunConfig};
use dedukt::dna::{Dataset, DatasetId, ReadSet, ScalePreset};
use dedukt::sim::MetricValue;
use std::path::PathBuf;
use std::process::Command;

fn tiny_reads() -> ReadSet {
    Dataset::new(DatasetId::EColi30x, ScalePreset::Tiny).generate()
}

fn run_with_metrics(mode: Mode) -> RunReport {
    let reads = tiny_reads();
    let mut rc = RunConfig::new(mode, 2);
    rc.collect_metrics = true;
    run(&reads, &rc).expect("valid config")
}

/// Every series name the supermer pipeline exports. Renaming any of
/// these is a breaking change for metric consumers — update DESIGN.md's
/// observability section alongside this list.
const SUPERMER_SERIES: &[&str] = &[
    "alltoallv_wait_seconds_total",
    "alltoallv_wire_seconds_total",
    "compute_seconds_total",
    "count_probe_steps",
    "count_table_load_factor",
    "device_peak_bytes",
    "exchange_bytes_total",
    "exchange_collectives_total",
    "exchange_intra_node_bytes_total",
    "kernel_occupancy:build_supermers",
    "kernel_occupancy:count_kmers",
    "kmers_counted_total",
    "supermer_compression_ratio",
    "supermer_length_bases",
    "supermers_built_total",
];

#[test]
fn supermer_metrics_schema_is_stable() {
    let report = run_with_metrics(Mode::GpuSupermer);
    let snap = report.metrics.as_ref().expect("metrics requested");
    let names: Vec<&str> = snap.entries.iter().map(|e| e.name.as_str()).collect();
    for required in SUPERMER_SERIES {
        assert!(names.contains(required), "missing series {required}");
    }
    assert!(
        names
            .iter()
            .any(|n| n.starts_with("exchange_superstep_bytes:")),
        "missing per-superstep byte series"
    );
    // Snapshot ordering is name-major: deterministic export order.
    let mut sorted = snap.entries.clone();
    sorted.sort_by(|a, b| (&a.name, a.rank).cmp(&(&b.name, b.rank)));
    assert_eq!(snap.entries, sorted.as_slice());
}

#[test]
fn metric_totals_are_consistent_with_the_report() {
    for mode in [Mode::CpuBaseline, Mode::GpuKmer, Mode::GpuSupermer] {
        let report = run_with_metrics(mode);
        let snap = report.metrics.as_ref().unwrap();

        // Exchange accounting: the per-rank byte counters sum to the
        // report's wire total, and the per-superstep series partition it.
        assert_eq!(
            snap.counter_total("exchange_bytes_total"),
            report.exchange.bytes
        );
        let superstep_sum: u64 = snap
            .entries
            .iter()
            .filter(|e| e.name.starts_with("exchange_superstep_bytes:"))
            .map(|e| match e.value {
                MetricValue::Counter(v) => v,
                _ => 0,
            })
            .sum();
        assert_eq!(superstep_sum, report.exchange.bytes, "mode {mode:?}");

        // Tier split: the always-recorded intra-node counter matches the
        // report, and the two tiers partition the total exactly.
        assert_eq!(
            snap.counter_total("exchange_intra_node_bytes_total"),
            report.exchange.intra_node_bytes,
            "mode {mode:?}"
        );
        assert_eq!(
            report.exchange.intra_node_bytes + report.exchange.off_node_bytes,
            report.exchange.bytes,
            "mode {mode:?}"
        );

        // Counting: each rank's counter equals its reported load.
        assert_eq!(
            snap.counter_total("kmers_counted_total"),
            report.total_kmers
        );
        for (rank, &kmers) in report.load.kmers_per_rank.iter().enumerate() {
            assert_eq!(
                snap.get("kmers_counted_total", Some(rank)),
                Some(&MetricValue::Counter(kmers)),
                "mode {mode:?} rank {rank}"
            );
        }

        // GPU modes carry the probe-step histogram; one observation per
        // received k-mer, at least one probe each.
        if mode != Mode::CpuBaseline {
            for (rank, &kmers) in report.load.kmers_per_rank.iter().enumerate() {
                match snap.get("count_probe_steps", Some(rank)) {
                    Some(MetricValue::Histogram(h)) => {
                        assert_eq!(h.count(), kmers);
                        assert!(h.sum() >= kmers);
                    }
                    other => panic!("mode {mode:?} rank {rank}: {other:?}"),
                }
            }
        }
    }
}

/// Wide k (u128 keys) exports exactly the same series set as narrow k:
/// dashboards keyed on the schema never see the width. The wire totals
/// stay width-honest — 17 bytes per supermer (16-byte word + length).
#[test]
fn wide_metrics_schema_matches_narrow() {
    use std::collections::BTreeSet;
    let reads = tiny_reads();
    let mut rc = RunConfig::new(Mode::GpuSupermer, 2);
    rc.collect_metrics = true;
    let narrow = run(&reads, &rc).expect("valid config");
    rc.counting.k = 41;
    rc.counting.m = 11;
    rc.counting.window = 24;
    let wide = dedukt::core::pipeline::run_typed::<u128>(&reads, &rc).expect("valid wide config");
    let names = |r: &[dedukt::sim::metrics::MetricEntry]| -> BTreeSet<String> {
        r.iter().map(|e| e.name.clone()).collect()
    };
    assert_eq!(
        names(&narrow.metrics.as_ref().unwrap().entries),
        names(&wide.metrics.as_ref().unwrap().entries),
        "wide and narrow runs must export the same series"
    );
    assert_eq!(
        wide.metrics
            .as_ref()
            .unwrap()
            .counter_total("exchange_bytes_total"),
        wide.exchange.units * 17,
        "wide supermers are 17 bytes on the wire"
    );
}

/// A zero-rate fault plan is a true no-op: the metric name set, the
/// `CommStats` wire-byte totals, every phase time and the makespan are
/// exactly what a run without any plan produces. This pins the PR 3
/// schema against accidental drift from the fault machinery.
#[test]
fn zero_fault_plan_changes_nothing() {
    use dedukt::net::{FaultPlan, FaultSpec};
    use std::collections::BTreeSet;
    let reads = tiny_reads();
    for mode in [Mode::CpuBaseline, Mode::GpuKmer, Mode::GpuSupermer] {
        let mut rc = RunConfig::new(mode, 2);
        rc.collect_metrics = true;
        let plain = run(&reads, &rc).expect("valid config");
        rc.fault = Some(FaultPlan::new(12345, FaultSpec::none()));
        let zeroed = run(&reads, &rc).expect("zero-rate plan cannot fail");

        // Wire-byte accounting untouched, no retry residue.
        assert_eq!(zeroed.exchange.bytes, plain.exchange.bytes, "mode {mode:?}");
        assert_eq!(
            zeroed.exchange.off_node_bytes, plain.exchange.off_node_bytes,
            "mode {mode:?}"
        );
        assert_eq!(zeroed.exchange.rounds, plain.exchange.rounds);
        assert_eq!(zeroed.exchange.retries, 0, "mode {mode:?}");
        assert_eq!(zeroed.exchange.retry_bytes, 0, "mode {mode:?}");
        assert_eq!(zeroed.exchange.corrupt_buckets, 0);
        assert_eq!(
            zeroed.exchange.recovery_time,
            dedukt::sim::SimTime::ZERO,
            "mode {mode:?}"
        );

        // Simulated time bit-identical: no straggle factor, no backoff.
        assert_eq!(zeroed.phases.parse, plain.phases.parse, "mode {mode:?}");
        assert_eq!(
            zeroed.phases.exchange, plain.phases.exchange,
            "mode {mode:?}"
        );
        assert_eq!(zeroed.phases.count, plain.phases.count, "mode {mode:?}");
        assert_eq!(zeroed.makespan, plain.makespan, "mode {mode:?}");
        assert_eq!(
            zeroed.exchange.alltoallv_time, plain.exchange.alltoallv_time,
            "mode {mode:?}"
        );

        // The exported series set — the schema dashboards key on — is
        // exactly the PR 3 set: no fault series appear without retries.
        let names = |r: &RunReport| -> BTreeSet<String> {
            r.metrics
                .as_ref()
                .unwrap()
                .entries
                .iter()
                .map(|e| e.name.clone())
                .collect()
        };
        assert_eq!(names(&zeroed), names(&plain), "mode {mode:?}");
    }
}

/// A zero-rate memory plan (plus the default safety factor) is a true
/// no-op, exactly like the zero-rate fault plan above: same table
/// sizing, same phase times, and the exported series set contains no
/// pressure series (`table_regrows_total`, `spill_kmers_total`,
/// `device_oom_events_total`, `hbm_high_water_bytes`). This pins the
/// pre-pressure schema against drift from the recovery machinery.
#[test]
fn zero_pressure_plan_changes_nothing() {
    use dedukt::gpu::{MemPlan, MemSpec};
    use std::collections::BTreeSet;
    let reads = tiny_reads();
    for mode in [Mode::CpuBaseline, Mode::GpuKmer, Mode::GpuSupermer] {
        let mut rc = RunConfig::new(mode, 2);
        rc.collect_metrics = true;
        rc.collect_spectrum = true;
        let plain = run(&reads, &rc).expect("valid config");
        rc.mem = Some(MemPlan::new(98765, MemSpec::none()));
        rc.table_safety = 1.0;
        let zeroed = run(&reads, &rc).expect("zero-rate plan cannot fail");

        assert_eq!(zeroed.phases.parse, plain.phases.parse, "mode {mode:?}");
        assert_eq!(
            zeroed.phases.exchange, plain.phases.exchange,
            "mode {mode:?}"
        );
        assert_eq!(zeroed.phases.count, plain.phases.count, "mode {mode:?}");
        assert_eq!(zeroed.makespan, plain.makespan, "mode {mode:?}");
        assert_eq!(zeroed.total_kmers, plain.total_kmers);
        assert_eq!(zeroed.distinct_kmers, plain.distinct_kmers);
        assert_eq!(zeroed.spectrum, plain.spectrum, "mode {mode:?}");

        let names = |r: &RunReport| -> BTreeSet<String> {
            r.metrics
                .as_ref()
                .unwrap()
                .entries
                .iter()
                .map(|e| e.name.clone())
                .collect()
        };
        let zn = names(&zeroed);
        assert_eq!(zn, names(&plain), "mode {mode:?}");
        for pressure_series in [
            "table_regrows_total",
            "spill_kmers_total",
            "device_oom_events_total",
            "hbm_high_water_bytes",
        ] {
            assert!(
                !zn.contains(pressure_series),
                "mode {mode:?}: {pressure_series} must not exist without pressure"
            );
        }
    }
}

#[test]
fn disabling_metrics_leaves_the_run_bit_identical() {
    let reads = tiny_reads();
    for mode in [Mode::CpuBaseline, Mode::GpuKmer, Mode::GpuSupermer] {
        let mut rc = RunConfig::new(mode, 2);
        rc.collect_metrics = false;
        let off = run(&reads, &rc).expect("valid config");
        rc.collect_metrics = true;
        let on = run(&reads, &rc).expect("valid config");
        assert!(off.metrics.is_none());
        assert!(on.metrics.is_some());
        assert_eq!(off.phases.parse, on.phases.parse, "mode {mode:?}");
        assert_eq!(off.phases.exchange, on.phases.exchange, "mode {mode:?}");
        assert_eq!(off.phases.count, on.phases.count, "mode {mode:?}");
        assert_eq!(off.makespan, on.makespan, "mode {mode:?}");
        assert_eq!(off.total_kmers, on.total_kmers);
        assert_eq!(off.distinct_kmers, on.distinct_kmers);
        assert_eq!(off.exchange.bytes, on.exchange.bytes);
        assert_eq!(off.load.kmers_per_rank, on.load.kmers_per_rank);
    }
}

// ── CLI golden checks ────────────────────────────────────────────────────

fn dedukt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dedukt"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dedukt-metrics-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn cli_metrics_exports_match_the_schema() {
    let dir = tmpdir("cli");
    let fastq = dir.join("reads.fastq");
    assert!(dedukt()
        .args(["simulate", "ecoli", "--scale", "tiny", "--out"])
        .arg(&fastq)
        .status()
        .unwrap()
        .success());

    // JSON export: every schema name present, envelope stable.
    let json_path = dir.join("m.json");
    let out = dedukt()
        .args(["count"])
        .arg(&fastq)
        .args(["--mode", "supermer", "--nodes", "2", "--metrics"])
        .arg(&json_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The phase/imbalance digest goes to stderr, like all diagnostics.
    let diag = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        diag.contains("simulated phases:"),
        "summary missing:\n{diag}"
    );
    assert!(diag.contains("imbalance"), "summary missing:\n{diag}");
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.trim_start().starts_with("{\n  \"metrics\": ["));
    for required in SUPERMER_SERIES {
        assert!(
            json.contains(&format!("\"name\": \"{required}\"")),
            "JSON export missing {required}"
        );
    }
    assert!(json.contains("\"type\": \"histogram\""));
    assert!(json.contains("\"buckets\": ["));
    assert!(json.contains("\"rank\": 0,"));

    // Prometheus export: typed series with rank labels and cumulative
    // histogram buckets ending at +Inf.
    let prom_path = dir.join("m.prom");
    assert!(dedukt()
        .args(["count"])
        .arg(&fastq)
        .args([
            "--mode",
            "supermer",
            "--nodes",
            "2",
            "--metrics-format",
            "prom",
            "--metrics"
        ])
        .arg(&prom_path)
        .status()
        .unwrap()
        .success());
    let prom = std::fs::read_to_string(&prom_path).unwrap();
    assert!(prom.contains("# TYPE exchange_bytes_total counter"));
    assert!(prom.contains("# TYPE supermer_length_bases histogram"));
    assert!(prom.contains("exchange_bytes_total{rank=\"0\"}"));
    assert!(prom.contains("supermer_length_bases_bucket{rank=\"0\",le=\"+Inf\"}"));
    assert!(prom.contains("supermer_length_bases_sum{rank=\"0\"}"));
    // Every non-comment line is `name{labels} value`.
    for line in prom
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let (_, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("bad line {line}"));
        assert!(value.parse::<f64>().is_ok(), "unparseable value in {line}");
    }
}
