//! Shape tests: the paper's qualitative results, asserted on the
//! simulated system at test scale. These are the reproduction's
//! contract — each test names the paper artifact it guards.

use dedukt::core::{pipeline, Mode, RunConfig};
use dedukt::dna::{Dataset, DatasetId, ScalePreset};

fn run_m(
    reads: &dedukt::dna::ReadSet,
    mode: Mode,
    nodes: usize,
    m: usize,
) -> dedukt::core::RunReport {
    let mut rc = RunConfig::new(mode, nodes);
    rc.counting.m = m;
    pipeline::run(reads, &rc).expect("valid config")
}

/// Shape tests need enough data to saturate the simulated devices (the
/// occupancy model penalises near-empty grids, which the paper never
/// measured); 0.25× bench scale ≈ 8.5 M bases.
fn celegans() -> dedukt::dna::ReadSet {
    Dataset::new(DatasetId::CElegans40x, ScalePreset::Custom(0.25)).generate()
}

/// Fig. 3: GPU compute ≫ CPU compute at equal node count; exchange time
/// of the same order.
#[test]
fn fig3_shape_gpu_collapses_compute() {
    let reads = celegans();
    let cpu = run_m(&reads, Mode::CpuBaseline, 2, 7);
    let gpu = run_m(&reads, Mode::GpuKmer, 2, 7);
    let cpu_compute = cpu.phases.parse + cpu.phases.count;
    let gpu_compute = gpu.phases.parse + gpu.phases.count;
    assert!(
        cpu_compute / gpu_compute > 50.0,
        "compute collapse too small: {}",
        cpu_compute / gpu_compute
    );
    // Exchange within an order of magnitude (same volume, same nodes;
    // the GPU side adds staging).
    let ratio = cpu.phases.exchange / gpu.phases.exchange;
    assert!((0.1..10.0).contains(&ratio), "exchange ratio {ratio}");
    // And the GPU pipeline is exchange-dominated (paper: up to 80%).
    assert!(
        gpu.phases.exchange_fraction() > 0.5,
        "GPU pipeline should be communication-bound: {}",
        gpu.phases.exchange_fraction()
    );
}

/// Fig. 6: both GPU counters beat the CPU baseline overall; the supermer
/// version beats the k-mer version.
#[test]
fn fig6_shape_overall_speedups() {
    let reads = celegans();
    let cpu = run_m(&reads, Mode::CpuBaseline, 2, 7);
    let kmer = run_m(&reads, Mode::GpuKmer, 2, 7);
    let smer = run_m(&reads, Mode::GpuSupermer, 2, 7);
    assert!(kmer.speedup_over(&cpu) > 5.0);
    assert!(smer.speedup_over(&cpu) > kmer.speedup_over(&cpu));
}

/// Fig. 7: supermers pay in parse (+27-33%) and count (+23-27%) but win
/// the exchange; overhead ratios should be in the paper's neighbourhood.
#[test]
fn fig7_shape_supermer_tradeoff() {
    let reads = celegans();
    let kmer = run_m(&reads, Mode::GpuKmer, 2, 7);
    let smer = run_m(&reads, Mode::GpuSupermer, 2, 7);
    let parse_overhead = smer.phases.parse / kmer.phases.parse;
    let count_overhead = smer.phases.count / kmer.phases.count;
    assert!(
        (1.05..1.9).contains(&parse_overhead),
        "parse overhead {parse_overhead} (paper ~1.3)"
    );
    assert!(
        (1.05..1.9).contains(&count_overhead),
        "count overhead {count_overhead} (paper ~1.25)"
    );
    assert!(smer.exchange.alltoallv_time < kmer.exchange.alltoallv_time);
}

/// Fig. 8 / Table II: supermers cut exchanged bytes ~3-4×, more with
/// m=7 than m=9.
#[test]
fn fig8_table2_shape_volume_reduction() {
    let reads = celegans();
    let kmer = run_m(&reads, Mode::GpuKmer, 2, 7);
    let sm7 = run_m(&reads, Mode::GpuSupermer, 2, 7);
    let sm9 = run_m(&reads, Mode::GpuSupermer, 2, 9);
    let red7 = kmer.exchange.bytes as f64 / sm7.exchange.bytes as f64;
    let red9 = kmer.exchange.bytes as f64 / sm9.exchange.bytes as f64;
    assert!(
        (2.0..5.0).contains(&red7),
        "m=7 reduction {red7} (paper ~3.4-3.8)"
    );
    assert!(
        red7 > red9,
        "m=7 must reduce more than m=9: {red7} vs {red9}"
    );
    assert!(
        sm9.exchange.units > sm7.exchange.units,
        "m=9 yields more, shorter supermers"
    );
    // Alltoallv speedup in the paper's 1.5-4x band.
    let speedup = kmer.exchange.alltoallv_time / sm7.exchange.alltoallv_time;
    assert!((1.3..5.0).contains(&speedup), "alltoallv speedup {speedup}");
}

/// Fig. 9: compute kernels scale near-linearly with node count.
#[test]
fn fig9_shape_compute_scaling() {
    let reads = celegans();
    let r4 = run_m(&reads, Mode::GpuKmer, 4, 7);
    let r16 = run_m(&reads, Mode::GpuKmer, 16, 7);
    let rate4 = r4.insertion_rate().unwrap().units_per_sec();
    let rate16 = r16.insertion_rate().unwrap().units_per_sec();
    let scaling = rate16 / rate4;
    assert!(
        (2.0..6.0).contains(&scaling),
        "4→16 nodes should scale ~4x (near-linear), got {scaling}"
    );
}

/// Table III: minimizer routing is more imbalanced than k-mer hashing.
/// The effect needs paper-scale rank counts (the paper measures at 384
/// ranks; at a dozen ranks minimizer buckets average out), so this test
/// runs at 16 nodes = 96 ranks.
#[test]
fn table3_shape_imbalance() {
    let reads_ce = celegans();
    let km = run_m(&reads_ce, Mode::GpuKmer, 16, 7);
    let sm = run_m(&reads_ce, Mode::GpuSupermer, 16, 7);
    assert!(
        sm.load.imbalance() > km.load.imbalance(),
        "supermer {} vs kmer {}",
        sm.load.imbalance(),
        km.load.imbalance()
    );
    let reads_hs = Dataset::new(DatasetId::HSapiens54x, ScalePreset::Custom(0.1)).generate();
    let sm_hs = run_m(&reads_hs, Mode::GpuSupermer, 16, 7);
    assert!(
        sm_hs.load.imbalance() > 1.2,
        "repeat-rich supermer routing should be visibly imbalanced: {}",
        sm_hs.load.imbalance()
    );
}

/// §V-C: the exchange fraction grows with node count for the GPU
/// pipeline (communication becomes *the* bottleneck at scale).
#[test]
fn exchange_fraction_grows_with_scale() {
    let reads = celegans();
    let small = run_m(&reads, Mode::GpuKmer, 1, 7);
    let big = run_m(&reads, Mode::GpuKmer, 16, 7);
    assert!(
        big.phases.exchange_fraction() >= small.phases.exchange_fraction() * 0.8,
        "exchange fraction should not collapse with scale: {} -> {}",
        small.phases.exchange_fraction(),
        big.phases.exchange_fraction()
    );
}
