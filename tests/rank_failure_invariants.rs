//! Property tests of rank-level failure and elastic rescale (DESIGN.md
//! §11): for any deterministic rank plan — drawn deaths, pinned kills,
//! checkpoint cadence, rescale schedule — on any engine, any key width,
//! any routing × codec, the counted spectrum is bit-identical to the
//! undisturbed run or the run fails cleanly (`RanksLost` when the
//! recovery budget is exhausted, `DeviceOom` when rerouted load
//! legitimately overwhelms a survivor). Deaths re-home minimizer ranges
//! to survivors, so per-rank placement is *not* part of the contract —
//! only the instance-total conservation that `assert_counts_identical`
//! pins.

mod common;

use common::{assert_counts_identical, instrumented_config, tiny_reads};
use dedukt::core::pipeline::{run_typed, RunError, RunReport};
use dedukt::core::{Mode, PackedKmer, RunConfig};
use dedukt::dna::ReadSet;
use dedukt::gpu::{MemPlan, MemSpec};
use dedukt::net::cost::ExchangeAlgo;
use dedukt::net::{FaultPlan, FaultSpec, RankPlan, RankSpec};
use dedukt::sim::JournalEvent;
use proptest::prelude::*;

/// Ranks per node by engine (the Summit shapes the simulator models).
fn ranks_per_node(mode: Mode) -> usize {
    match mode {
        Mode::CpuBaseline => 42,
        Mode::GpuKmer | Mode::GpuSupermer => 6,
    }
}

/// Runs `mode` with and without the recovery plan and checks every
/// rank-failure invariant. Returns the disturbed report for further
/// assertions, or `None` when the plan legitimately failed cleanly
/// (budget exhausted, or rerouted load OOMing a survivor) — which must
/// surface as `RanksLost` / `DeviceOom`, never a panic.
#[allow(clippy::too_many_arguments)]
fn check_rank_failure_invariants<K: PackedKmer>(
    reads: &ReadSet,
    mode: Mode,
    nodes: usize,
    k: usize,
    plan: Option<RankPlan>,
    checkpoint: Option<u64>,
    rescale: Vec<(u64, usize)>,
    algo: ExchangeAlgo,
    compress: bool,
) -> Option<RunReport<K>> {
    let mut rc = instrumented_config(mode, nodes, k);
    rc.collect_journal = true;
    // Deaths fire at round boundaries: cap rounds so there are several.
    rc.round_limit_bytes = Some(4096);
    rc.exchange_algo = algo;
    rc.wire_compress = compress;
    let clean = run_typed::<K>(reads, &rc).expect("undisturbed run cannot fail");

    let has_plan = plan.is_some();
    rc.rank = plan;
    rc.checkpoint_rounds = checkpoint;
    rc.rescale = rescale.clone();
    let disturbed = match run_typed::<K>(reads, &rc) {
        Ok(r) => r,
        // Exhausting the recovery budget is a legitimate clean failure —
        // and only a death-capable plan may produce it.
        Err(RunError::RanksLost { dead, round: _ }) => {
            assert!(has_plan, "RanksLost without a rank plan");
            assert!(dead > 0);
            return None;
        }
        // Rerouted load can legitimately overwhelm a survivor's table.
        Err(RunError::DeviceOom { rank, .. }) => {
            assert!(rank < clean.nranks);
            return None;
        }
        Err(other) => panic!("unexpected run error: {other}"),
    };

    // The headline guarantee: whatever died, whatever was replayed or
    // re-homed, the counted spectrum is bit-identical.
    assert_counts_identical(&disturbed, &clean);
    assert_eq!(disturbed.exchange.units, clean.exchange.units);

    // The journal agrees with the report: one rankdead event per death,
    // rescale events only for scheduled rounds the run reached, and
    // every event names a real rank / world size.
    let events = disturbed.journal.as_ref().expect("journal requested");
    let mut deaths = 0u64;
    let mut rescales = 0usize;
    for e in events {
        match e {
            JournalEvent::RankDead { rank, .. } => {
                deaths += 1;
                assert!(*rank < disturbed.nranks);
            }
            JournalEvent::Rescale { round, from, to } => {
                assert!(
                    rescale.iter().any(|(r, w)| r == round && w == to),
                    "unscheduled rescale to {to} at round {round}"
                );
                assert!(*from <= disturbed.nranks && *to <= disturbed.nranks);
                rescales += 1;
            }
            _ => {}
        }
    }
    assert_eq!(deaths, disturbed.exchange.rank_deaths);
    assert!(rescales <= rescale.len());
    if !has_plan {
        assert_eq!(disturbed.exchange.rank_deaths, 0);
        assert_eq!(disturbed.exchange.replayed_bytes, 0);
    }

    // Metric gating, both directions: the death series exist exactly
    // when a rank actually died (no fault plan runs here, so retries
    // never co-own `recovery_seconds_total`).
    let snap = disturbed.metrics.as_ref().expect("metrics requested");
    let has = |name: &str| snap.entries.iter().any(|e| e.name == name);
    if disturbed.exchange.rank_deaths > 0 {
        assert_eq!(
            snap.counter_total("rank_deaths_total"),
            disturbed.exchange.rank_deaths
        );
        assert_eq!(
            snap.counter_total("exchange_replay_bytes_total"),
            disturbed.exchange.replayed_bytes
        );
        assert!(has("recovery_seconds_total"));
    } else {
        for name in [
            "rank_deaths_total",
            "exchange_replay_bytes_total",
            "recovery_seconds_total",
        ] {
            assert!(!has(name), "zero-death run must not export {name}");
        }
    }
    Some(disturbed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any engine, any seed, any death rate, pinned kills or not,
    /// checkpointed or not, rescaled or not, both key widths, both
    /// routes, codec on or off: the spectrum never moves (or the run
    /// fails cleanly).
    #[test]
    fn rank_failures_count_exactly_like_undisturbed_runs(
        seed in 0u64..1_000_000,
        nodes in 1usize..3,
        mode_idx in 0usize..3,
        rate in 0.0f64..0.04,
        max_dead in 1usize..4,
        kill_pin in any::<bool>(),
        checkpointed in any::<bool>(),
        rescaled in any::<bool>(),
        hierarchical in any::<bool>(),
        compress in any::<bool>(),
        wide in any::<bool>(),
    ) {
        let mode = [Mode::CpuBaseline, Mode::GpuKmer, Mode::GpuSupermer][mode_idx];
        let nranks = nodes * ranks_per_node(mode);
        let mut s = format!("rate={rate},max-dead={max_dead}");
        if kill_pin {
            s.push_str(&format!(",kill=1:{}", seed as usize % nranks));
        }
        let plan = RankPlan::new(seed, RankSpec::parse(&s).unwrap());
        let checkpoint = checkpointed.then_some(2);
        let rescale = if rescaled {
            vec![(2u64, nranks.max(2) - 1)]
        } else {
            Vec::new()
        };
        let algo = if hierarchical {
            ExchangeAlgo::NodeAggregated
        } else {
            ExchangeAlgo::Direct
        };
        let reads = tiny_reads();
        if wide {
            check_rank_failure_invariants::<u128>(
                &reads, mode, nodes, 41, Some(plan), checkpoint, rescale, algo, compress,
            );
        } else {
            check_rank_failure_invariants::<u64>(
                &reads, mode, nodes, 17, Some(plan), checkpoint, rescale, algo, compress,
            );
        }
    }

    /// The same rank plan replays the same run: deaths, replay volume,
    /// simulated recovery time and spectrum all repeat — or the run
    /// fails identically. Engines consult the plan independently, so
    /// this is what makes cross-engine agreement possible at all.
    #[test]
    fn same_plan_reruns_are_identical(
        seed in 0u64..1_000_000,
        mode_idx in 0usize..3,
    ) {
        let mode = [Mode::CpuBaseline, Mode::GpuKmer, Mode::GpuSupermer][mode_idx];
        let reads = tiny_reads();
        let mut rc = RunConfig::new(mode, 2);
        rc.collect_spectrum = true;
        rc.round_limit_bytes = Some(4096);
        rc.rank = Some(RankPlan::new(seed, RankSpec::parse("rate=0.03,max-dead=3").unwrap()));
        let a = run_typed::<u64>(&reads, &rc);
        let b = run_typed::<u64>(&reads, &rc);
        match (a, b) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.spectrum, b.spectrum);
                prop_assert_eq!(a.exchange.rank_deaths, b.exchange.rank_deaths);
                prop_assert_eq!(a.exchange.replayed_bytes, b.exchange.replayed_bytes);
                prop_assert_eq!(a.exchange.recovery_time, b.exchange.recovery_time);
                prop_assert_eq!(a.makespan, b.makespan);
            }
            (a, b) => prop_assert_eq!(a.err(), b.err()),
        }
    }
}

/// A pinned kill on every engine × route × codec cell, so the property
/// above is never vacuously green: a rank really dies, its range really
/// replays onto a survivor, and the spectrum still lands bit-identical.
#[test]
fn pinned_kill_recovers_on_every_engine_and_route() {
    let reads = tiny_reads();
    for mode in [Mode::CpuBaseline, Mode::GpuKmer, Mode::GpuSupermer] {
        for algo in [ExchangeAlgo::Direct, ExchangeAlgo::NodeAggregated] {
            for compress in [false, true] {
                let plan = RankPlan::new(0, RankSpec::parse("rate=0,kill=1:1").unwrap());
                let r = check_rank_failure_invariants::<u64>(
                    &reads,
                    mode,
                    2,
                    17,
                    Some(plan),
                    None,
                    Vec::new(),
                    algo,
                    compress,
                )
                .expect("one death inside a budget of two must survive");
                assert_eq!(r.exchange.rank_deaths, 1, "{mode:?}/{algo:?}/{compress}");
                assert!(
                    r.exchange.replayed_bytes > 0,
                    "{mode:?}/{algo:?}/{compress}: a round-1 death must replay round 0"
                );
                assert!(
                    r.exchange.recovery_time > dedukt::sim::SimTime::ZERO,
                    "{mode:?}/{algo:?}/{compress}: replay charges simulated time"
                );
            }
        }
    }
}

/// Checkpoints bound replay: a round-3 death replays everything since
/// the range was acquired without them, and only since the last
/// checkpoint with a cadence of 2 — strictly less wire volume, same
/// spectrum either way.
#[test]
fn checkpoints_bound_replay_volume() {
    let reads = tiny_reads();
    let plan = || RankPlan::new(0, RankSpec::parse("rate=0,kill=3:1").unwrap());
    let unchecked = check_rank_failure_invariants::<u64>(
        &reads,
        Mode::GpuKmer,
        2,
        17,
        Some(plan()),
        None,
        Vec::new(),
        ExchangeAlgo::Direct,
        false,
    )
    .expect("one death must survive");
    let checked = check_rank_failure_invariants::<u64>(
        &reads,
        Mode::GpuKmer,
        2,
        17,
        Some(plan()),
        Some(2),
        Vec::new(),
        ExchangeAlgo::Direct,
        false,
    )
    .expect("one death must survive");
    assert_eq!(unchecked.exchange.rank_deaths, 1);
    assert_eq!(checked.exchange.rank_deaths, 1);
    assert!(
        unchecked.exchange.replayed_bytes > 0,
        "a round-3 death with no checkpoint replays rounds 0..3"
    );
    assert!(
        checked.exchange.replayed_bytes < unchecked.exchange.replayed_bytes,
        "a cadence-2 checkpoint must shrink the replay: {} vs {}",
        checked.exchange.replayed_bytes,
        unchecked.exchange.replayed_bytes
    );
    assert_eq!(checked.spectrum, unchecked.spectrum);
}

/// Elastic rescale round-trips: shrink 12 -> 8 at round 1, grow back to
/// 12 at round 3. Both boundaries land in the journal with the exact
/// scheduled worlds, and the spectrum never moves.
#[test]
fn rescale_shrink_and_grow_preserve_counts() {
    let reads = tiny_reads();
    let r = check_rank_failure_invariants::<u64>(
        &reads,
        Mode::GpuSupermer,
        2,
        17,
        None,
        None,
        vec![(1, 8), (3, 12)],
        ExchangeAlgo::Direct,
        false,
    )
    .expect("a rescale without deaths cannot exhaust any budget");
    let rescales: Vec<(u64, usize, usize)> = r
        .journal
        .as_ref()
        .unwrap()
        .iter()
        .filter_map(|e| match e {
            JournalEvent::Rescale { round, from, to } => Some((*round, *from, *to)),
            _ => None,
        })
        .collect();
    assert_eq!(
        rescales,
        vec![(1, 12, 8), (3, 8, 12)],
        "both scheduled boundaries must fire, in order"
    );
}

/// Deaths compose with rescale and checkpoints: kill a rank inside a
/// shrunken world and the survivors still reconstruct the spectrum.
#[test]
fn death_inside_a_shrunken_world_recovers() {
    let reads = tiny_reads();
    let plan = RankPlan::new(0, RankSpec::parse("rate=0,kill=2:0").unwrap());
    let r = check_rank_failure_invariants::<u64>(
        &reads,
        Mode::GpuKmer,
        2,
        17,
        Some(plan),
        Some(2),
        vec![(1, 9)],
        ExchangeAlgo::Direct,
        false,
    )
    .expect("one death in a 9-rank world is inside the budget");
    assert_eq!(r.exchange.rank_deaths, 1);
}

/// An unsurvivable plan (two pinned kills against a budget of one) is a
/// clean, reportable `RanksLost` on every engine — never a panic, and
/// the error names the boundary that broke the budget.
#[test]
fn exhausted_recovery_budget_fails_cleanly() {
    let reads = tiny_reads();
    let spec = RankSpec::parse("rate=0,max-dead=1,kill=1:0,kill=1:1").unwrap();
    for mode in [Mode::CpuBaseline, Mode::GpuKmer, Mode::GpuSupermer] {
        let mut rc = RunConfig::new(mode, 1);
        rc.round_limit_bytes = Some(4096);
        rc.rank = Some(RankPlan::new(7, spec.clone()));
        match run_typed::<u64>(&reads, &rc) {
            Err(RunError::RanksLost { dead, round }) => {
                assert_eq!(dead, 2, "mode {mode:?}");
                assert_eq!(round, 1, "mode {mode:?}");
            }
            other => panic!("mode {mode:?}: expected RanksLost, got {other:?}"),
        }
    }
}

/// Semantically-empty specs are normalized to absent plans on every
/// engine: `rate=0` rank plans, zero-rate fault plans and zero-rate
/// memory plans all leave the run byte-identical to one configured with
/// no plan at all — same spectrum, same tables, same simulated times,
/// and no recovery series in the metrics export.
#[test]
fn noop_specs_are_normalized_to_absent_on_every_engine() {
    let reads = tiny_reads();
    for mode in [Mode::CpuBaseline, Mode::GpuKmer, Mode::GpuSupermer] {
        let mut bare = instrumented_config(mode, 2, 17);
        let mut noop = bare.clone();
        noop.fault = Some(FaultPlan::new(3, FaultSpec::none()));
        noop.mem = Some(MemPlan::new(5, MemSpec::none()));
        noop.rank = Some(RankPlan::new(7, RankSpec::none()));
        let a = run_typed::<u64>(&reads, &bare).expect("valid config");
        let b = run_typed::<u64>(&reads, &noop).expect("valid config");
        assert_eq!(b.spectrum, a.spectrum, "mode {mode:?}");
        assert_eq!(b.tables, a.tables, "mode {mode:?}");
        assert_eq!(b.makespan, a.makespan, "mode {mode:?}");
        assert_eq!(b.exchange.bytes, a.exchange.bytes, "mode {mode:?}");
        assert_eq!(b.exchange.rank_deaths, 0, "mode {mode:?}");
        let snap = b.metrics.as_ref().unwrap();
        for name in [
            "retries_total",
            "rank_deaths_total",
            "exchange_replay_bytes_total",
            "recovery_seconds_total",
        ] {
            assert!(
                !snap.entries.iter().any(|e| e.name == name),
                "mode {mode:?}: noop-plan run must not export {name}"
            );
        }
        // And the run detail announces neither plan, on either side.
        bare.collect_journal = true;
        noop.collect_journal = true;
        let a = run_typed::<u64>(&reads, &bare).unwrap();
        let b = run_typed::<u64>(&reads, &noop).unwrap();
        let detail = |r: &RunReport| match &r.journal.as_ref().unwrap()[0] {
            JournalEvent::Meta { detail, .. } => detail.clone(),
            other => panic!("first event is {other:?}"),
        };
        assert_eq!(detail(&b), detail(&a), "mode {mode:?}");
        assert!(!detail(&b).contains("rank["), "mode {mode:?}");
    }
}
