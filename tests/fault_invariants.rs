//! Property tests of the fault-injection layer (DESIGN.md §7): for any
//! deterministic fault plan the driver survives, the counted results are
//! bit-identical to the fault-free run — faults may only cost simulated
//! time, never correctness — and the recovery accounting is consistent
//! everywhere it surfaces (report, metrics, wire-byte split).

mod common;

use common::{assert_counts_identical, instrumented_config, sorted_tables, tiny_reads};
use dedukt::core::pipeline::{run_typed, RunError, RunReport};
use dedukt::core::{Mode, PackedKmer, RunConfig};
use dedukt::dna::ReadSet;
use dedukt::net::{FaultPlan, FaultSpec};
use proptest::prelude::*;

/// Runs `mode` with and without `plan` at width `K` and checks every
/// fault invariant. Returns the faulty report for further assertions,
/// or `None` when the plan legitimately exhausted the retry budget.
fn check_fault_invariants<K: PackedKmer>(
    reads: &ReadSet,
    mode: Mode,
    nodes: usize,
    k: usize,
    plan: FaultPlan,
) -> Option<RunReport<K>> {
    let mut rc = instrumented_config(mode, nodes, k);
    let clean = run_typed::<K>(reads, &rc).expect("fault-free run cannot fail");
    rc.fault = Some(plan);
    let faulty = match run_typed::<K>(reads, &rc) {
        Ok(r) => r,
        // Exhausting the retry budget is a legitimate clean failure —
        // but it must be *that* failure, reported, not a panic.
        Err(RunError::ExchangeFailed { attempts, .. }) => {
            assert_eq!(attempts, plan.spec().max_retries + 1);
            return None;
        }
        Err(other) => panic!("unexpected run error: {other}"),
    };

    // The headline guarantee: counted results are bit-identical — and
    // since faults never re-home a minimizer range, placement is pinned
    // too: identical per-rank loads and sorted per-rank tables.
    assert_counts_identical(&faulty, &clean);
    assert_eq!(faulty.load.kmers_per_rank, clean.load.kmers_per_rank);
    assert_eq!(sorted_tables(&faulty), sorted_tables(&clean));

    // Exchange accounting: every attempt's bytes are on the wire total,
    // and the retry share is exactly what the clean run didn't send.
    assert_eq!(faulty.exchange.units, clean.exchange.units);
    assert_eq!(
        faulty.exchange.bytes,
        clean.exchange.bytes + faulty.exchange.retry_bytes
    );
    assert!(faulty.exchange.corrupt_buckets <= faulty.exchange.retries);
    if faulty.exchange.retries == 0 {
        assert_eq!(faulty.exchange.retry_bytes, 0);
        assert_eq!(faulty.exchange.recovery_time, dedukt::sim::SimTime::ZERO);
    } else {
        assert!(faulty.exchange.recovery_time > dedukt::sim::SimTime::ZERO);
    }

    // Telemetry agrees with the report, and the fault series exist
    // exactly when recovery happened.
    let snap = faulty.metrics.as_ref().expect("metrics requested");
    let has = |name: &str| snap.entries.iter().any(|e| e.name == name);
    if faulty.exchange.retries > 0 {
        assert_eq!(snap.counter_total("retries_total"), faulty.exchange.retries);
        assert_eq!(
            snap.counter_total("corrupt_buckets_total"),
            faulty.exchange.corrupt_buckets
        );
        assert_eq!(
            snap.counter_total("exchange_retry_bytes_total"),
            faulty.exchange.retry_bytes
        );
        assert!(has("recovery_seconds_total"));
    } else {
        for name in [
            "retries_total",
            "corrupt_buckets_total",
            "recovery_seconds_total",
            "exchange_retry_bytes_total",
        ] {
            assert!(!has(name), "zero-retry run must not export {name}");
        }
    }
    Some(faulty)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any engine, any seed, any survivable-or-not fault mix, both key
    /// widths: spectra match the fault-free run bit for bit (or the run
    /// fails cleanly), and the accounting stays consistent.
    #[test]
    fn fault_runs_count_exactly_like_fault_free_runs(
        seed in 0u64..1_000_000,
        nodes in 1usize..3,
        mode_idx in 0usize..3,
        fail in 0.0f64..0.4,
        corrupt in 0.0f64..0.3,
        straggle in 0.0f64..0.3,
        wide in any::<bool>(),
    ) {
        let mode = [Mode::CpuBaseline, Mode::GpuKmer, Mode::GpuSupermer][mode_idx];
        let mut spec = FaultSpec::none();
        spec.fail_rate = fail;
        spec.corrupt_rate = corrupt;
        spec.straggle_rate = straggle;
        spec.straggle_factor = 3.0;
        spec.max_retries = 6;
        spec.backoff_secs = 1e-4;
        let reads = tiny_reads();
        let plan = FaultPlan::new(seed, spec);
        if wide {
            check_fault_invariants::<u128>(&reads, mode, nodes, 41, plan);
        } else {
            check_fault_invariants::<u64>(&reads, mode, nodes, 17, plan);
        }
    }

    /// The same fault seed replays the same run, byte for byte: counted
    /// tables, retry counts, simulated times and makespan all repeat.
    #[test]
    fn same_seed_reruns_are_byte_identical(
        seed in 0u64..1_000_000,
        mode_idx in 0usize..3,
    ) {
        let mode = [Mode::CpuBaseline, Mode::GpuKmer, Mode::GpuSupermer][mode_idx];
        let reads = tiny_reads();
        let mut rc = RunConfig::new(mode, 1);
        rc.collect_tables = true;
        rc.fault = Some(FaultPlan::new(seed, FaultSpec::default()));
        let a = run_typed::<u64>(&reads, &rc);
        let b = run_typed::<u64>(&reads, &rc);
        match (a, b) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.tables.as_ref().unwrap(), b.tables.as_ref().unwrap());
                prop_assert_eq!(a.exchange.retries, b.exchange.retries);
                prop_assert_eq!(a.exchange.retry_bytes, b.exchange.retry_bytes);
                prop_assert_eq!(a.exchange.recovery_time, b.exchange.recovery_time);
                prop_assert_eq!(a.phases.exchange, b.phases.exchange);
                prop_assert_eq!(a.makespan, b.makespan);
            }
            (a, b) => prop_assert_eq!(a.err(), b.err()),
        }
    }
}

/// A pinned seed that actually retries on every engine, so the property
/// above is never vacuously true: injected faults really fire, really
/// get retried, and the wire/time split behaves as documented.
#[test]
fn pinned_seed_exercises_recovery_on_every_engine() {
    let reads = tiny_reads();
    let spec = FaultSpec::parse("fail=0.25,corrupt=0.15,straggle=0,retries=8,backoff=1e-4")
        .expect("valid spec");
    for mode in [Mode::CpuBaseline, Mode::GpuKmer, Mode::GpuSupermer] {
        let faulty = check_fault_invariants::<u64>(&reads, mode, 1, 17, FaultPlan::new(42, spec))
            .expect("seed 42 must survive 8 retries at these rates");
        assert!(
            faulty.exchange.retries > 0,
            "mode {mode:?}: seed 42 must actually retry"
        );
        assert!(faulty.exchange.retry_bytes > 0, "mode {mode:?}");
        // Without stragglers the first-attempt wire time is untouched by
        // the fault machinery; recovery is charged separately.
        let mut rc = RunConfig::new(mode, 1);
        let clean = run_typed::<u64>(&reads, &rc).unwrap();
        assert_eq!(
            faulty.exchange.alltoallv_time,
            clean.exchange.alltoallv_time
        );
        assert!(faulty.phases.exchange > clean.phases.exchange);
        rc.fault = Some(FaultPlan::new(42, spec));
        rc.collect_trace = true;
        let traced = run_typed::<u64>(&reads, &rc).unwrap();
        // Recovery shows up in the trace: backoff spans and the retry
        // counter lane both exist.
        let events = traced.trace.as_ref().unwrap();
        assert!(events.iter().any(|e| e.name == "retry-backoff"));
        let counters = traced.trace_counters.as_ref().unwrap();
        assert!(counters.iter().any(|c| c.name == "retry buckets"));
    }
}

/// An unsurvivable plan (every bucket fails every attempt) is a clean,
/// reportable error on every engine — never a panic, never a hang.
#[test]
fn exhausted_retry_budget_fails_cleanly() {
    let reads = tiny_reads();
    let mut spec = FaultSpec::none();
    spec.fail_rate = 1.0;
    spec.max_retries = 2;
    for mode in [Mode::CpuBaseline, Mode::GpuKmer, Mode::GpuSupermer] {
        let mut rc = RunConfig::new(mode, 1);
        rc.fault = Some(FaultPlan::new(7, spec));
        match run_typed::<u64>(&reads, &rc) {
            Err(RunError::ExchangeFailed { round, attempts }) => {
                assert_eq!(round, 0, "mode {mode:?}");
                assert_eq!(attempts, 3, "mode {mode:?}: 1 first attempt + 2 retries");
            }
            other => panic!("mode {mode:?}: expected ExchangeFailed, got {other:?}"),
        }
    }
}

/// Stragglers alone (no delivery faults) stretch simulated time but
/// leave volumes, retries and results untouched.
#[test]
fn stragglers_cost_time_not_correctness() {
    let reads = tiny_reads();
    let spec = FaultSpec::parse("fail=0,corrupt=0,straggle=0.5,slow=4.0").expect("valid spec");
    let mut rc = RunConfig::new(Mode::GpuSupermer, 2);
    rc.collect_tables = true;
    let clean = run_typed::<u64>(&reads, &rc).unwrap();
    rc.fault = Some(FaultPlan::new(11, spec));
    let slowed = run_typed::<u64>(&reads, &rc).unwrap();
    assert_eq!(slowed.exchange.retries, 0);
    assert_eq!(slowed.exchange.bytes, clean.exchange.bytes);
    assert_eq!(
        slowed.tables.as_ref().unwrap(),
        clean.tables.as_ref().unwrap()
    );
    assert!(
        slowed.makespan > clean.makespan,
        "a 4x slowdown on half the ranks must stretch the makespan: {} vs {}",
        slowed.makespan,
        clean.makespan
    );
}
