//! Proptest fuzz of the supermer wire codec (DESIGN.md §10): for any
//! bucket in the codec's domain the roundtrip is exact at both key
//! widths, and for any *hostile* byte string — truncations, single bit
//! flips, outright garbage — `try_decode_bucket` returns a decode error
//! or a well-formed bucket, never a panic and never an out-of-range
//! supermer. The exchange's checksum frames catch corruption before
//! payloads normally reach the decoder; this suite pins what happens if
//! they ever don't.

use dedukt::core::wire::{encode_bucket, try_decode_bucket};
use dedukt::dna::kmer::KmerWord;
use proptest::prelude::*;

/// Packs base codes into a word the way the supermer cutter does, so
/// generated items live exactly in the codec's domain (no stray bits
/// above the `2·len` window).
fn word_of<K: KmerWord>(codes: &[u8]) -> K {
    let mask = K::kmer_mask(codes.len());
    codes
        .iter()
        .fold(K::ZERO, |w, &c| w.roll_sym(c & 0b11, mask))
}

/// A strategy over buckets of up to `n` supermers at width `K`: each
/// supermer is 1..=cap random bases (cap = 32 at u64, 64 at u128).
fn buckets<K: KmerWord>(n: usize) -> impl Strategy<Value = Vec<(K, u8)>> {
    let cap = K::WORD_BYTES * 4;
    prop::collection::vec(prop::collection::vec(0u8..4, 1..cap + 1), 0..n).prop_map(|items| {
        items
            .into_iter()
            .map(|codes| (word_of::<K>(&codes), codes.len() as u8))
            .collect()
    })
}

/// Shared truncation property: every strict prefix of a valid frame
/// either errors or decodes to something other than the original (the
/// empty prefix is the one prefix that legitimately decodes — to the
/// empty bucket).
fn check_prefixes<K: KmerWord>(items: &[(K, u8)], wire: &[u8], cut: usize) {
    let prefix = &wire[..cut.min(wire.len().saturating_sub(1))];
    match try_decode_bucket::<K>(prefix) {
        Err(e) => assert!(!e.is_empty()),
        Ok(v) => assert_ne!(
            v,
            items.to_vec(),
            "a strict prefix must never reproduce the full bucket"
        ),
    }
}

/// Shared hostile-bytes property: whatever comes back, it is well
/// formed — every length in 1..=cap, and a successful decode re-encodes
/// without panicking.
fn check_hostile<K: KmerWord>(buf: &[u8]) {
    let cap = K::WORD_BYTES * 4;
    if let Ok(v) = try_decode_bucket::<K>(buf) {
        for &(_, len) in &v {
            assert!(
                (1..=cap).contains(&(len as usize)),
                "decoded length {len} outside 1..={cap}"
            );
        }
        let _ = encode_bucket(&v);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any bucket of in-domain supermers roundtrips exactly, at both
    /// widths — including the degenerate empty bucket and single-item
    /// buckets with maximal lengths.
    #[test]
    fn arbitrary_buckets_roundtrip_exactly(
        narrow in buckets::<u64>(40),
        wide in buckets::<u128>(20),
    ) {
        prop_assert_eq!(
            try_decode_bucket::<u64>(&encode_bucket(&narrow)).unwrap(),
            narrow
        );
        prop_assert_eq!(
            try_decode_bucket::<u128>(&encode_bucket(&wide)).unwrap(),
            wide
        );
    }

    /// Truncating a valid frame anywhere never panics and never
    /// reproduces the original bucket.
    #[test]
    fn truncated_frames_fail_closed(
        items in buckets::<u64>(24),
        wide in buckets::<u128>(12),
        cut in 0usize..1_000_000,
    ) {
        let wire = encode_bucket(&items);
        if !wire.is_empty() {
            check_prefixes(&items, &wire, cut % wire.len());
        }
        let wire = encode_bucket(&wide);
        if !wire.is_empty() {
            check_prefixes(&wide, &wire, cut % wire.len());
        }
    }

    /// Flipping any single bit of a valid frame never panics and never
    /// yields an out-of-range supermer. (A flip in ignored base padding
    /// may decode identically — equality is not the property here;
    /// well-formedness is.)
    #[test]
    fn bit_flipped_frames_never_panic(
        items in buckets::<u64>(24),
        byte in 0usize..1_000_000,
        bit in 0u8..8,
    ) {
        let mut wire = encode_bucket(&items);
        if !wire.is_empty() {
            let i = byte % wire.len();
            wire[i] ^= 1 << bit;
            check_hostile::<u64>(&wire);
            check_hostile::<u128>(&wire);
        }
    }

    /// Outright garbage — bytes that never came from the encoder — is
    /// rejected or decoded to a well-formed bucket, at both widths.
    #[test]
    fn garbage_bytes_never_panic(buf in prop::collection::vec(any::<u8>(), 0..200)) {
        check_hostile::<u64>(&buf);
        check_hostile::<u128>(&buf);
    }
}
