//! Property tests for the wide-k (u128) regime: the same invariants the
//! narrow supermer machinery guarantees, exercised through the
//! width-generic APIs under random reads and parameters.

use dedukt::core::minimizer::{MinimizerScheme, OrderingKind};
use dedukt::core::supermer::build_supermers_windowed_w;
use dedukt::core::wide::wide_reference_counts;
use dedukt::core::{pipeline, CountingConfig, Mode, RunConfig};
use dedukt::dna::kmer::kmer_words128;
use dedukt::dna::{Encoding, Read, ReadSet};
use proptest::prelude::*;

fn wide_cfg_strategy() -> impl Strategy<Value = CountingConfig> {
    (32usize..=63, 2usize..16).prop_map(|(k, m)| CountingConfig {
        k,
        m: m.min(k - 1),
        window: 65 - k,
        encoding: Encoding::PaperRandom,
        ..CountingConfig::default()
    })
}

fn scheme_of(cfg: &CountingConfig) -> MinimizerScheme {
    MinimizerScheme {
        encoding: cfg.encoding,
        ordering: OrderingKind::EncodedLexicographic,
        m: cfg.m,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Wide windowed supermers preserve the wide k-mer multiset.
    #[test]
    fn wide_supermers_preserve_multiset(
        codes in prop::collection::vec(0u8..4, 0..300),
        cfg in wide_cfg_strategy(),
    ) {
        let scheme = scheme_of(&cfg);
        let mut extracted: Vec<u128> =
            build_supermers_windowed_w::<u128>(&codes, cfg.k, cfg.window, &scheme)
                .iter()
                .flat_map(|s| s.kmers(cfg.k).collect::<Vec<_>>())
                .collect();
        extracted.sort_unstable();
        let mut direct: Vec<u128> = kmer_words128(&codes, cfg.k, cfg.encoding).collect();
        direct.sort_unstable();
        prop_assert_eq!(extracted, direct);
    }

    /// Every wide k-mer in a supermer shares the supermer's minimizer,
    /// and lengths respect the one-u128 packing bound.
    #[test]
    fn wide_minimizer_invariant(
        codes in prop::collection::vec(0u8..4, 0..200),
        cfg in wide_cfg_strategy(),
    ) {
        let scheme = scheme_of(&cfg);
        for sm in build_supermers_windowed_w::<u128>(&codes, cfg.k, cfg.window, &scheme) {
            prop_assert!((cfg.k..=64).contains(&(sm.len as usize)));
            for kw in sm.kmers(cfg.k) {
                prop_assert_eq!(scheme.minimizer_of_w(kw, cfg.k).word, sm.minimizer);
            }
        }
    }

    /// All three engines equal the wide oracle on random read sets when
    /// run at the u128 key width.
    #[test]
    fn wide_pipelines_equal_oracle(
        reads in prop::collection::vec(prop::collection::vec(0u8..4, 0..150), 1..12),
        mode_idx in 0usize..3,
    ) {
        let rs: ReadSet = reads
            .into_iter()
            .enumerate()
            .map(|(i, codes)| Read { id: format!("w{i}"), codes, quals: None })
            .collect();
        let cfg = CountingConfig {
            k: 41,
            m: 11,
            window: 24,
            ..CountingConfig::default()
        };
        let oracle = wide_reference_counts(&rs, &cfg);
        let mode = [Mode::CpuBaseline, Mode::GpuKmer, Mode::GpuSupermer][mode_idx];
        let mut rc = RunConfig::new(mode, 1);
        rc.counting = cfg;
        rc.collect_tables = true;
        let report = pipeline::run_typed::<u128>(&rs, &rc).expect("valid wide config");
        prop_assert_eq!(report.distinct_kmers as usize, oracle.len());
        prop_assert_eq!(report.total_kmers, oracle.values().sum::<u64>());
        let mut seen = std::collections::HashMap::new();
        for t in report.tables.as_ref().expect("tables collected") {
            for &(kmer, count) in t {
                prop_assert!(seen.insert(kmer, count).is_none(), "duplicate owner");
            }
        }
        for (kmer, &count) in &oracle {
            prop_assert_eq!(seen.get(kmer).copied(), Some(count as u32));
        }
    }
}
