//! Property tests for the wide-k (u128) extension: the same invariants
//! the narrow supermer machinery guarantees, under random reads and
//! parameters in the wide regime.

use dedukt::core::wide::{
    minimizer_of_wide, run_cpu_wide, wide_reference_counts, wide_supermers, WideConfig, WideMode,
};
use dedukt::core::CpuCoreModel;
use dedukt::dna::kmer::kmer_words128;
use dedukt::dna::{Encoding, Read, ReadSet};
use proptest::prelude::*;

fn wide_cfg_strategy() -> impl Strategy<Value = WideConfig> {
    (32usize..=63, 2usize..16).prop_map(|(k, m)| WideConfig {
        k,
        m: m.min(k - 1),
        window: 65 - k,
        encoding: Encoding::PaperRandom,
        ..WideConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Wide windowed supermers preserve the wide k-mer multiset.
    #[test]
    fn wide_supermers_preserve_multiset(
        codes in prop::collection::vec(0u8..4, 0..300),
        cfg in wide_cfg_strategy(),
    ) {
        let mut extracted: Vec<u128> = wide_supermers(&codes, &cfg)
            .iter()
            .flat_map(|s| s.kmers(cfg.k).collect::<Vec<_>>())
            .collect();
        extracted.sort_unstable();
        let mut direct: Vec<u128> = kmer_words128(&codes, cfg.k, cfg.encoding).collect();
        direct.sort_unstable();
        prop_assert_eq!(extracted, direct);
    }

    /// Every wide k-mer in a supermer shares the supermer's minimizer,
    /// and lengths respect the one-u128 packing bound.
    #[test]
    fn wide_minimizer_invariant(
        codes in prop::collection::vec(0u8..4, 0..200),
        cfg in wide_cfg_strategy(),
    ) {
        let scheme = dedukt::core::minimizer::MinimizerScheme {
            encoding: cfg.encoding,
            ordering: dedukt::core::minimizer::OrderingKind::EncodedLexicographic,
            m: cfg.m,
        };
        for sm in wide_supermers(&codes, &cfg) {
            prop_assert!((cfg.k..=64).contains(&(sm.len as usize)));
            for kw in sm.kmers(cfg.k) {
                prop_assert_eq!(minimizer_of_wide(&scheme, kw, cfg.k), sm.minimizer);
            }
        }
    }

    /// Both wide pipelines equal the wide oracle on random read sets.
    #[test]
    fn wide_pipelines_equal_oracle(
        reads in prop::collection::vec(prop::collection::vec(0u8..4, 0..150), 1..12),
        mode_supermer in any::<bool>(),
    ) {
        let rs: ReadSet = reads
            .into_iter()
            .enumerate()
            .map(|(i, codes)| Read { id: format!("w{i}"), codes, quals: None })
            .collect();
        let cfg = WideConfig::default();
        let oracle = wide_reference_counts(&rs, &cfg);
        let mode = if mode_supermer { WideMode::Supermer } else { WideMode::Kmer };
        let report = run_cpu_wide(&rs, &cfg, mode, 1, &CpuCoreModel::default());
        prop_assert_eq!(report.distinct_kmers as usize, oracle.len());
        prop_assert_eq!(report.total_kmers, oracle.values().sum::<u64>());
        let mut seen = std::collections::HashMap::new();
        for t in &report.tables {
            for &(kmer, count) in t {
                prop_assert!(seen.insert(kmer, count).is_none(), "duplicate owner");
            }
        }
        for (kmer, &count) in &oracle {
            prop_assert_eq!(seen.get(kmer).copied(), Some(count as u32));
        }
    }
}
