//! Tier-1 invariants of the staged round driver (§III-A): memory-bounded
//! rounds and compute/exchange overlap change *time*, never *results*.
//! Every counter, every round count, overlap on or off — the counted
//! multiset, distinct totals, spectrum, and per-rank tables are identical.

use dedukt::core::pipeline::gpu_common::split_rounds_weighted;
use dedukt::core::{pipeline, Mode, PackedKmer, RunConfig, RunReport};
use dedukt::dna::{Dataset, DatasetId, ReadSet, ScalePreset};
use proptest::prelude::*;

fn run(reads: &ReadSet, mode: Mode, cap: Option<u64>, overlap: bool) -> RunReport {
    run_w::<u64>(reads, mode, cap, overlap, |_| {})
}

/// Width-generic runner: same collection flags at any key width, with a
/// hook to adjust the counting parameters (e.g. into the wide regime).
fn run_w<K: PackedKmer>(
    reads: &ReadSet,
    mode: Mode,
    cap: Option<u64>,
    overlap: bool,
    tweak: impl Fn(&mut RunConfig),
) -> RunReport<K> {
    let mut rc = RunConfig::new(mode, 2);
    rc.collect_spectrum = true;
    rc.collect_tables = true;
    rc.round_limit_bytes = cap;
    rc.overlap_rounds = overlap;
    tweak(&mut rc);
    pipeline::run_typed::<K>(reads, &rc).expect("valid config")
}

/// Probing layout (hence iteration order) depends on insertion order, so
/// compare table *contents* per rank.
fn sorted_tables<K: PackedKmer + Ord>(r: &RunReport<K>) -> Vec<Vec<(K, u32)>> {
    r.tables
        .as_ref()
        .expect("tables collected")
        .iter()
        .map(|t| {
            let mut t = t.clone();
            t.sort_unstable();
            t
        })
        .collect()
}

fn assert_same_counts<K: PackedKmer + Ord>(r: &RunReport<K>, baseline: &RunReport<K>, what: &str) {
    assert_eq!(r.total_kmers, baseline.total_kmers, "{what}: total");
    assert_eq!(
        r.distinct_kmers, baseline.distinct_kmers,
        "{what}: distinct"
    );
    assert_eq!(r.spectrum, baseline.spectrum, "{what}: spectrum");
    assert_eq!(
        sorted_tables(r),
        sorted_tables(baseline),
        "{what}: per-rank tables"
    );
    assert_eq!(r.exchange.bytes, baseline.exchange.bytes, "{what}: volume");
}

/// All three counters, sliced into ~4 and ~16 rounds, blocking and
/// overlapped: results are bit-identical to the single-round baseline,
/// the round count grows as the cap shrinks, and overlap never makes a
/// multi-round run slower (it charges max(wire, count) per round instead
/// of wire + count).
#[test]
fn rounds_and_overlap_change_time_not_results() {
    let reads = Dataset::new(DatasetId::EColi30x, ScalePreset::Tiny).generate();
    for mode in [Mode::CpuBaseline, Mode::GpuKmer, Mode::GpuSupermer] {
        let baseline = run(&reads, mode, None, false);
        assert_eq!(
            baseline.exchange.rounds, 1,
            "{mode:?}: unlimited is 1 round"
        );
        let per_rank = baseline.exchange.bytes / baseline.nranks as u64;

        let mut prev_rounds = 1;
        for divisor in [4u64, 16] {
            let cap = (per_rank / divisor).max(1);
            let blocking = run(&reads, mode, Some(cap), false);
            let overlapped = run(&reads, mode, Some(cap), true);

            assert_same_counts(&blocking, &baseline, &format!("{mode:?} /{divisor}"));
            assert_same_counts(
                &overlapped,
                &baseline,
                &format!("{mode:?} /{divisor} overlapped"),
            );

            assert!(
                blocking.exchange.rounds >= prev_rounds,
                "{mode:?}: smaller cap must not reduce rounds ({} < {prev_rounds})",
                blocking.exchange.rounds
            );
            assert!(
                blocking.exchange.rounds >= 2,
                "{mode:?} /{divisor}: cap {cap} B should force multiple rounds"
            );
            assert_eq!(
                blocking.exchange.rounds, overlapped.exchange.rounds,
                "{mode:?}: overlap must not change the round schedule"
            );
            // Tiny float slack: phase sums associate differently.
            assert!(
                overlapped.total_time().as_secs() <= blocking.total_time().as_secs() * (1.0 + 1e-9),
                "{mode:?} /{divisor}: overlap slower ({} > {})",
                overlapped.total_time(),
                blocking.total_time()
            );
            // Makespan shrinks too on the GPU counters. The CPU baseline
            // is exempt: with 42 ranks/node its per-rank count times vary
            // enough that syncing on max(wire, count) every round can
            // accumulate more straggler wait than blocking's single
            // end-of-run count barrier — the mean (total_time) still wins.
            if mode != Mode::CpuBaseline {
                assert!(
                    overlapped.makespan.as_secs() <= blocking.makespan.as_secs() * (1.0 + 1e-9),
                    "{mode:?} /{divisor}: overlap worsened makespan"
                );
            }
            prev_rounds = blocking.exchange.rounds;
        }
    }
}

/// With an unlimited budget there is a single round, so overlap has
/// nothing to hide behind: the run degenerates to blocking exactly.
#[test]
fn overlap_is_identity_on_a_single_round() {
    let reads = Dataset::new(DatasetId::PAeruginosa30x, ScalePreset::Tiny).generate();
    for mode in [Mode::CpuBaseline, Mode::GpuKmer, Mode::GpuSupermer] {
        let blocking = run(&reads, mode, None, false);
        let overlapped = run(&reads, mode, None, true);
        assert_same_counts(&overlapped, &blocking, &format!("{mode:?}"));
        assert_eq!(overlapped.exchange.rounds, 1);
        assert_eq!(
            overlapped.total_time(),
            blocking.total_time(),
            "{mode:?}: single-round overlap must cost exactly the same"
        );
    }
}

/// The same invariant in the wide regime (k = 41, u128 keys, 16-byte
/// wire items): round caps and overlap never change results, and every
/// configuration stays bit-identical to the independent wide oracle.
#[test]
fn wide_rounds_and_overlap_change_time_not_results() {
    let reads = Dataset::new(DatasetId::EColi30x, ScalePreset::Tiny).generate();
    let wide = |rc: &mut RunConfig| {
        rc.counting.k = 41;
        rc.counting.m = 11;
        rc.counting.window = 24;
    };
    let mut oracle: Vec<(u128, u32)> = {
        let mut rc = RunConfig::new(Mode::CpuBaseline, 2);
        wide(&mut rc);
        dedukt::core::wide::wide_reference_counts(&reads, &rc.counting)
            .into_iter()
            .map(|(k, c)| (k, c as u32))
            .collect()
    };
    oracle.sort_unstable();
    for mode in [Mode::CpuBaseline, Mode::GpuKmer, Mode::GpuSupermer] {
        let baseline = run_w::<u128>(&reads, mode, None, false, wide);
        assert_eq!(
            baseline.exchange.rounds, 1,
            "{mode:?}: unlimited is 1 round"
        );
        let mut merged: Vec<(u128, u32)> = sorted_tables(&baseline).concat();
        merged.sort_unstable();
        assert_eq!(merged, oracle, "{mode:?}: baseline vs wide oracle");

        let cap = (baseline.exchange.bytes / baseline.nranks as u64 / 4).max(1);
        let blocking = run_w::<u128>(&reads, mode, Some(cap), false, wide);
        let overlapped = run_w::<u128>(&reads, mode, Some(cap), true, wide);
        assert!(
            blocking.exchange.rounds >= 2,
            "{mode:?}: cap {cap} B should force multiple rounds"
        );
        assert_same_counts(&blocking, &baseline, &format!("wide {mode:?}"));
        assert_same_counts(&overlapped, &baseline, &format!("wide {mode:?} overlapped"));
        assert_eq!(
            blocking.exchange.rounds, overlapped.exchange.rounds,
            "{mode:?}: overlap must not change the round schedule"
        );
        assert!(
            overlapped.total_time().as_secs() <= blocking.total_time().as_secs() * (1.0 + 1e-9),
            "{mode:?}: overlap slower"
        );
    }
}

/// Tag an element with its (src, dst, index) so conservation and order
/// are checkable after slicing.
fn tag(src: usize, dst: usize, i: usize) -> u64 {
    ((src as u64) << 40) | ((dst as u64) << 20) | i as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round slicing is a partition: concatenating each (src, dst)
    /// payload across rounds restores the original, in order, for any
    /// cap — including caps smaller than one item's wire size — and any
    /// item weight. When the cap is binding (not clamped by the largest
    /// payload), each round's per-source outflow respects it up to the
    /// one-extra-item-per-destination slack of near-equal chunking.
    #[test]
    fn split_rounds_weighted_conserves_payloads(
        nranks in 1usize..5,
        sizes in prop::collection::vec(0usize..40, 25),
        cap in 1u64..1000,
        weight_idx in 0usize..4,
    ) {
        let item_bytes = [1u64, 8, 9, 16][weight_idx];
        let buckets: Vec<Vec<Vec<u64>>> = (0..nranks)
            .map(|src| {
                (0..nranks)
                    .map(|dst| {
                        let n = sizes[(src * 5 + dst) % sizes.len()];
                        (0..n).map(|i| tag(src, dst, i)).collect()
                    })
                    .collect()
            })
            .collect();
        let max_out: u64 = buckets
            .iter()
            .map(|row| row.iter().map(|v| v.len() as u64 * item_bytes).sum())
            .max()
            .unwrap_or(0);
        let max_items: u64 = buckets
            .iter()
            .flat_map(|row| row.iter().map(|v| v.len() as u64))
            .max()
            .unwrap_or(0);
        let rounds = split_rounds_weighted(buckets.clone(), Some(cap), item_bytes);

        prop_assert!(!rounds.is_empty());
        let unclamped = max_out.div_ceil(cap);
        prop_assert_eq!(
            rounds.len() as u64,
            unclamped.clamp(1, max_items.max(1)),
            "round count"
        );
        for round in &rounds {
            prop_assert_eq!(round.len(), nranks, "every round has all sources");
            for row in round {
                prop_assert_eq!(row.len(), nranks, "every source has all destinations");
            }
        }
        // Conservation with order: concatenation restores the input.
        for src in 0..nranks {
            for dst in 0..nranks {
                let glued: Vec<u64> = rounds
                    .iter()
                    .flat_map(|round| round[src][dst].iter().copied())
                    .collect();
                prop_assert_eq!(&glued, &buckets[src][dst], "payload ({}, {})", src, dst);
            }
        }
        // Cap respected (within chunking slack) when it was binding.
        if unclamped <= max_items {
            let slack = nranks as u64 * item_bytes;
            for (r, round) in rounds.iter().enumerate() {
                for (src, row) in round.iter().enumerate() {
                    let out: u64 = row.iter().map(|v| v.len() as u64 * item_bytes).sum();
                    prop_assert!(
                        out <= cap + slack,
                        "round {} src {}: {} B exceeds cap {} B + slack {} B",
                        r, src, out, cap, slack
                    );
                }
            }
        }
    }
}
