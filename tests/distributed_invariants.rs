//! Property tests of the distributed layer: partitioning, exchange
//! accounting, and the end-to-end pipeline under random read sets.

use dedukt::core::{pipeline, verify, Mode, RunConfig};
use dedukt::dna::{Read, ReadSet};
use dedukt::net::cost::Network;
use dedukt::net::{BspWorld, Communicator, FaultPlan, ThreadedWorld};
use proptest::prelude::*;

fn readset_strategy() -> impl Strategy<Value = ReadSet> {
    prop::collection::vec(prop::collection::vec(0u8..4, 0..120), 1..25).prop_map(|reads| {
        reads
            .into_iter()
            .enumerate()
            .map(|(i, codes)| Read {
                id: format!("p{i}"),
                codes,
                quals: None,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any random read set, any pipeline, any small node count: the
    /// distributed counts equal the oracle.
    #[test]
    fn pipelines_equal_oracle_on_random_reads(
        reads in readset_strategy(),
        nodes in 1usize..3,
        mode_idx in 0usize..3,
        k in 4usize..20,
        m in 2usize..4,
    ) {
        prop_assume!(m < k);
        let mode = [Mode::CpuBaseline, Mode::GpuKmer, Mode::GpuSupermer][mode_idx];
        let mut rc = RunConfig::new(mode, nodes);
        rc.counting.k = k;
        rc.counting.m = m;
        rc.counting.window = (33 - k).min(15);
        rc.collect_tables = true;
        let report = pipeline::run(&reads, &rc).expect("valid config");
        prop_assert_eq!(report.total_kmers, verify::reference_total(&reads, k));
        let check = verify::check_against_reference(&reads, &rc.counting, report.tables.as_ref().unwrap());
        prop_assert!(check.is_ok(), "{:?}", check);
    }

    /// BSP Alltoallv is a permutation: every element sent arrives exactly
    /// once, at the right destination.
    #[test]
    fn bsp_alltoallv_is_lossless(
        nodes in 1usize..4,
        sizes in prop::collection::vec(0usize..20, 36),
    ) {
        let mut world = BspWorld::new(Network::summit_gpu(nodes));
        let p = world.nranks();
        // Tag every element with (src, dst, index).
        let send: Vec<Vec<Vec<u64>>> = (0..p)
            .map(|src| {
                (0..p)
                    .map(|dst| {
                        let n = sizes[(src * 7 + dst) % sizes.len()];
                        (0..n).map(|i| ((src as u64) << 40) | ((dst as u64) << 20) | i as u64).collect()
                    })
                    .collect()
            })
            .collect();
        let sent_total: usize = send.iter().flat_map(|r| r.iter().map(Vec::len)).sum();
        let out = world.alltoallv(send);
        let mut recv_total = 0usize;
        for (dst, per_src) in out.recv.iter().enumerate() {
            for (src, payload) in per_src.iter().enumerate() {
                recv_total += payload.len();
                for (i, &v) in payload.iter().enumerate() {
                    prop_assert_eq!(v >> 40, src as u64);
                    prop_assert_eq!((v >> 20) & 0xFFFFF, dst as u64);
                    prop_assert_eq!(v & 0xFFFFF, i as u64);
                }
            }
        }
        prop_assert_eq!(sent_total, recv_total);
        prop_assert_eq!(world.stats().total_bytes, (sent_total * 8) as u64);
    }

    /// Simulated times grow with data volume. Exchange is strictly
    /// monotone (volume is exact); compute phases get a tolerance because
    /// the occupancy model reproduces the real GPU "tail effect" — below
    /// device-filling scale, slightly more work can add a block and
    /// finish *sooner*.
    #[test]
    fn phase_times_monotone_in_volume(
        reads in readset_strategy(),
    ) {
        let rc = RunConfig::new(Mode::GpuKmer, 1);
        let small = pipeline::run(&reads, &rc).expect("valid config");
        let mut doubled = reads.clone();
        let extra: Vec<Read> = reads.reads.iter().cloned().map(|mut r| { r.id.push('b'); r }).collect();
        doubled.reads.extend(extra);
        let big = pipeline::run(&doubled, &rc).expect("valid config");
        prop_assert!(big.phases.exchange >= small.phases.exchange);
        prop_assert!(big.phases.parse >= small.phases.parse * 0.6,
            "parse collapsed: {} -> {}", small.phases.parse, big.phases.parse);
        prop_assert!(big.phases.count >= small.phases.count * 0.6,
            "count collapsed: {} -> {}", small.phases.count, big.phases.count);
        prop_assert_eq!(big.total_kmers, small.total_kmers * 2);
    }

    /// The two network engines agree under the same fault plan: both the
    /// BSP world (driven through the driver-style retry loop) and the
    /// threaded world (per-pair retry protocol) deliver exactly the same
    /// payloads, and they observe the same number of retried buckets.
    /// The fate schedule is a pure function of (seed, round, attempt,
    /// src, dst), so neither engine needs the other's state to agree.
    #[test]
    fn engines_agree_on_deliveries_under_the_same_fault_plan(
        seed in 0u64..1_000_000,
        fail in 0.0f64..0.45,
        corrupt in 0.0f64..0.3,
        nrounds in 1u64..4,
    ) {
        let mut spec = dedukt::net::FaultSpec::none();
        spec.fail_rate = fail;
        spec.corrupt_rate = corrupt;
        let plan = FaultPlan::new(seed, spec);
        let mut world = BspWorld::new(Network::summit_gpu(1));
        world.enable_faults(plan);
        let p = world.nranks();
        // payload[src][dst][round]: unique, so misrouting is detectable.
        let payload = |src: usize, dst: usize, round: u64| -> Vec<u64> {
            vec![round << 32 | (src as u64) << 16 | dst as u64; (src + dst) % 3 + 1]
        };

        // BSP engine: one fault context per (round, attempt), retrying
        // only the undelivered buckets — the staged driver's loop.
        let mut bsp_retries = 0u64;
        let mut bsp_delivered: Vec<Vec<Vec<Vec<u64>>>> = Vec::new(); // [round][dst][src]
        for round in 0..nrounds {
            let send: Vec<Vec<Vec<u64>>> = (0..p)
                .map(|src| (0..p).map(|dst| payload(src, dst, round)).collect())
                .collect();
            world.fault_context(round, 0);
            let mut out = world.alltoallv(send);
            let mut delivered = out.recv;
            let mut attempt = 1u32;
            while out.failed_sends + out.corrupt_buckets > 0 {
                bsp_retries += out.failed_sends + out.corrupt_buckets;
                prop_assert!(attempt < 200, "plan never delivers");
                world.fault_context(round, attempt);
                out = world.alltoallv(out.undelivered);
                for (dst, row) in out.recv.iter_mut().enumerate() {
                    for (src, bucket) in row.iter_mut().enumerate() {
                        if !bucket.is_empty() {
                            prop_assert!(delivered[dst][src].is_empty(), "double delivery");
                            delivered[dst][src] = std::mem::take(bucket);
                        }
                    }
                }
                attempt += 1;
            }
            bsp_delivered.push(delivered);
        }
        world.clear_fault_context();

        // Threaded engine: the same collectives under the same plan; its
        // per-collective round counter lines up with the BSP contexts.
        let threaded = ThreadedWorld::run_with_faults(p, Some(plan), |comm| {
            let rank = comm.rank();
            let mut rounds = Vec::new();
            for round in 0..nrounds {
                let send: Vec<Vec<u64>> = (0..p).map(|dst| payload(rank, dst, round)).collect();
                rounds.push(comm.alltoallv_u64(send));
            }
            (rounds, comm.fault_retries())
        });

        let mut threaded_retries = 0u64;
        for (dst, (rounds, retries)) in threaded.iter().enumerate() {
            threaded_retries += retries;
            for (round, recv) in rounds.iter().enumerate() {
                for src in 0..p {
                    prop_assert_eq!(
                        &recv[src],
                        &bsp_delivered[round][dst][src],
                        "payload mismatch {}->{} round {}", src, dst, round
                    );
                    prop_assert_eq!(&recv[src], &payload(src, dst, round as u64));
                }
            }
        }
        prop_assert_eq!(
            bsp_retries,
            threaded_retries,
            "engines must observe the same retry schedule"
        );
        prop_assert_eq!(
            world.stats().failed_sends + world.stats().corrupt_buckets,
            threaded_retries
        );
    }
}
