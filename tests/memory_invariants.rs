//! Property tests of the memory-pressure layer (DESIGN.md §8): for any
//! deterministic memory plan the counting stage survives via regrow or
//! host spill, the counted spectra are bit-identical to the
//! unconstrained run — pressure may only cost simulated time, never
//! correctness — and exhausting the spill budget is a clean
//! `DeviceOom` error, never a panic.
//!
//! Under pressure the *set* of k-mers that bounces off a full table is
//! interleaving-dependent (blocks insert in parallel), so these tests
//! deliberately assert only interleaving-independent facts: spectra,
//! totals, sorted per-rank tables, and plan-draw determinism — never
//! raw spill counts or makespans of pressured runs.

mod common;

use common::{assert_counts_identical, instrumented_config, sorted_tables, tiny_reads};
use dedukt::core::pipeline::{run_typed, RunError, RunReport};
use dedukt::core::{Mode, PackedKmer, RunConfig};
use dedukt::dna::ReadSet;
use dedukt::gpu::{MemPlan, MemSpec};
use proptest::prelude::*;

/// The four series the recovery machinery may add to the export; they
/// must appear exactly when pressure actually fired (DESIGN.md §8).
const PRESSURE_SERIES: &[&str] = &[
    "table_regrows_total",
    "spill_kmers_total",
    "device_oom_events_total",
    "hbm_high_water_bytes",
];

/// Runs `mode` unconstrained and under `(safety, plan, hbm)` at width
/// `K` and checks every memory invariant. Returns the pressured report
/// for further assertions, or `None` when the plan legitimately
/// exhausted the device (creation-time denial or spill budget) — which
/// must surface as `DeviceOom`, never a panic.
fn check_memory_invariants<K: PackedKmer>(
    reads: &ReadSet,
    mode: Mode,
    nodes: usize,
    k: usize,
    safety: f64,
    plan: MemPlan,
    hbm: Option<u64>,
) -> Option<RunReport<K>> {
    let mut rc = instrumented_config(mode, nodes, k);
    let clean = run_typed::<K>(reads, &rc).expect("unconstrained run cannot fail");

    rc.table_safety = safety;
    rc.mem = Some(plan);
    if let Some(bytes) = hbm {
        rc.gpu_device.memory_bytes = bytes;
    }
    let pressured = match run_typed::<K>(reads, &rc) {
        Ok(r) => r,
        Err(RunError::DeviceOom {
            rank,
            detail,
            high_water_bytes,
        }) => {
            // A clean, attributable failure: the offending rank exists
            // and every rank reported its allocation high-water mark.
            assert!(rank < clean.nranks, "mode {mode:?}: rank {rank}");
            assert_eq!(high_water_bytes.len(), clean.nranks, "mode {mode:?}");
            assert!(!detail.is_empty(), "mode {mode:?}");
            return None;
        }
        Err(other) => panic!("unexpected run error: {other}"),
    };

    // The headline guarantee: counted results are bit-identical no
    // matter how much regrowing and spilling happened on the way — and
    // since pressure never re-homes a minimizer range, placement is
    // pinned too: identical per-rank loads and sorted per-rank tables.
    assert_counts_identical(&pressured, &clean);
    assert_eq!(pressured.load.kmers_per_rank, clean.load.kmers_per_rank);
    assert_eq!(sorted_tables(&pressured), sorted_tables(&clean));

    // Exchange is upstream of counting: pressure must not touch it.
    assert_eq!(pressured.exchange.bytes, clean.exchange.bytes);
    assert_eq!(pressured.exchange.units, clean.exchange.units);
    assert_eq!(pressured.exchange.rounds, clean.exchange.rounds);

    // Metric gating, both directions: the unconstrained run exports no
    // pressure series at all, and in the pressured run the high-water
    // gauge appears exactly when at least one event counter does.
    let has = |r: &RunReport<K>, name: &str| {
        r.metrics
            .as_ref()
            .unwrap()
            .entries
            .iter()
            .any(|e| e.name == name)
    };
    for name in PRESSURE_SERIES {
        assert!(
            !has(&clean, name),
            "mode {mode:?}: unconstrained run must not export {name}"
        );
    }
    let any_event = has(&pressured, "table_regrows_total")
        || has(&pressured, "spill_kmers_total")
        || has(&pressured, "device_oom_events_total");
    assert_eq!(
        has(&pressured, "hbm_high_water_bytes"),
        any_event,
        "mode {mode:?}: high-water gauge must track pressure events"
    );
    Some(pressured)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any engine, any seed, any mix of underestimates and allocation
    /// failures, both key widths, optionally a starved device: spectra
    /// match the unconstrained run bit for bit, or the run fails as a
    /// clean `DeviceOom`.
    #[test]
    fn pressured_runs_count_exactly_like_unconstrained_runs(
        seed in 0u64..1_000_000,
        nodes in 1usize..3,
        mode_idx in 0usize..3,
        safety in 0.01f64..1.5,
        under in 0.0f64..1.0,
        shrink in 0.1f64..1.0,
        afail in 0.0f64..0.8,
        tight_hbm in any::<bool>(),
        wide in any::<bool>(),
    ) {
        let mode = [Mode::CpuBaseline, Mode::GpuKmer, Mode::GpuSupermer][mode_idx];
        let mut spec = MemSpec::none();
        spec.underestimate_rate = under;
        spec.shrink_factor = shrink;
        spec.alloc_fail_rate = afail;
        spec.spill_limit = 1 << 20;
        let reads = tiny_reads();
        let plan = MemPlan::new(seed, spec);
        let hbm = tight_hbm.then_some(64 * 1024);
        if wide {
            check_memory_invariants::<u128>(&reads, mode, nodes, 41, safety, plan, hbm);
        } else {
            check_memory_invariants::<u64>(&reads, mode, nodes, 17, safety, plan, hbm);
        }
    }

    /// The plan itself replays exactly: every estimate and allocation
    /// draw is a pure function of (seed, coordinates), so engines can
    /// consult it independently without coordination and still agree.
    #[test]
    fn mem_plan_draws_replay_for_the_same_seed(
        seed in any::<u64>(),
        rate in 0.0f64..1.0,
    ) {
        let mut spec = MemSpec::none();
        spec.underestimate_rate = rate;
        spec.alloc_fail_rate = rate;
        spec.shrink_factor = 0.5;
        let a = MemPlan::new(seed, spec);
        let b = MemPlan::new(seed, spec);
        for rank in 0..16usize {
            prop_assert_eq!(a.underestimates(rank), b.underestimates(rank));
            let fa = a.estimate_factor(rank);
            prop_assert_eq!(fa, b.estimate_factor(rank));
            prop_assert!((0.0..=1.0).contains(&fa));
            for attempt in 0..8u64 {
                prop_assert_eq!(a.alloc_fails(rank, attempt), b.alloc_fails(rank, attempt));
            }
        }
    }
}

/// A pinned configuration that regrows (and only regrows) on every GPU
/// engine, so the property above is never vacuously true: with a
/// deliberately tiny safety factor and no allocation failures, every
/// rank's table overflows, doubles on device, and the spectrum still
/// lands bit-identical. The CPU baseline under the same plan never
/// pressures — its host table grows transparently.
#[test]
fn pinned_underestimate_regrows_on_device() {
    let reads = tiny_reads();
    // No injected failures: pressure comes purely from the 1% sizing.
    let plan = MemPlan::new(42, MemSpec::none());
    for mode in [Mode::GpuKmer, Mode::GpuSupermer] {
        let pressured = check_memory_invariants::<u64>(&reads, mode, 1, 17, 0.01, plan, None)
            .expect("regrow alone always survives");
        let snap = pressured.metrics.as_ref().unwrap();
        assert!(
            snap.counter_total("table_regrows_total") > 0,
            "mode {mode:?}: a 1% estimate must force at least one regrow"
        );
        let has = |name: &str| snap.entries.iter().any(|e| e.name == name);
        assert!(!has("spill_kmers_total"), "mode {mode:?}: nothing spills");
        assert!(!has("device_oom_events_total"), "mode {mode:?}");
        assert!(has("hbm_high_water_bytes"), "mode {mode:?}");
    }
    let cpu = check_memory_invariants::<u64>(&reads, Mode::CpuBaseline, 1, 17, 0.01, plan, None)
        .expect("host counting cannot OOM");
    let snap = cpu.metrics.as_ref().unwrap();
    for name in PRESSURE_SERIES {
        assert!(
            !snap.entries.iter().any(|e| e.name == *name),
            "cpu baseline must never export {name}"
        );
    }
}

/// A pinned configuration where every allocation is denied, so the
/// regrow path is closed and recovery must go through the host spill
/// list — and the spill trace lane appears exactly then.
#[test]
fn pinned_alloc_denial_spills_to_host() {
    let reads = tiny_reads();
    let mut spec = MemSpec::none();
    spec.alloc_fail_rate = 1.0;
    spec.spill_limit = 1 << 20;
    let plan = MemPlan::new(7, spec);
    for mode in [Mode::GpuKmer, Mode::GpuSupermer] {
        let pressured = check_memory_invariants::<u64>(&reads, mode, 1, 17, 0.01, plan, None)
            .expect("the spill budget is ample: the run must survive");
        let snap = pressured.metrics.as_ref().unwrap();
        assert!(
            snap.counter_total("spill_kmers_total") > 0,
            "mode {mode:?}: with regrow denied, overflow must spill"
        );
        assert!(
            snap.counter_total("device_oom_events_total") > 0,
            "mode {mode:?}: each denied regrow is an OOM event"
        );
        // The spill lane exists in the trace exactly because spilling
        // happened; zero-pressure traces never carry it.
        let mut rc = RunConfig::new(mode, 1);
        rc.table_safety = 0.01;
        rc.mem = Some(plan);
        rc.collect_trace = true;
        let traced = run_typed::<u64>(&reads, &rc).unwrap();
        let counters = traced.trace_counters.as_ref().unwrap();
        assert!(
            counters.iter().any(|c| c.name == "spill k-mers"),
            "mode {mode:?}: spilling must surface as a counter lane"
        );
    }
}

/// A starved device (16 KiB simulated HBM) exercises the *real* budget
/// path rather than injected denials: the first doubling fits, the
/// next is refused by the device allocator, and the remainder spills —
/// with the spectrum still bit-identical.
#[test]
fn real_hbm_budget_denial_recovers_via_spill() {
    let reads = tiny_reads();
    let mut spec = MemSpec::none();
    spec.spill_limit = 1 << 20;
    let plan = MemPlan::new(0, spec);
    let pressured = check_memory_invariants::<u64>(
        &reads,
        Mode::GpuSupermer,
        1,
        17,
        0.01,
        plan,
        Some(16 * 1024),
    )
    .expect("an ample spill budget survives a 16 KiB device");
    let snap = pressured.metrics.as_ref().unwrap();
    assert!(snap.counter_total("table_regrows_total") > 0);
    assert!(snap.counter_total("device_oom_events_total") > 0);
    assert!(snap.counter_total("spill_kmers_total") > 0);
}

/// An unsurvivable plan (all allocations denied, spill budget of ten
/// k-mers) is a clean, reportable `DeviceOom` on every GPU engine —
/// never a panic — and carries per-rank high-water marks for triage.
#[test]
fn exhausted_spill_budget_fails_cleanly() {
    let reads = tiny_reads();
    let mut spec = MemSpec::none();
    spec.alloc_fail_rate = 1.0;
    spec.spill_limit = 10;
    let plan = MemPlan::new(7, spec);
    for mode in [Mode::GpuKmer, Mode::GpuSupermer] {
        let mut rc = RunConfig::new(mode, 1);
        rc.table_safety = 0.01;
        rc.mem = Some(plan);
        match run_typed::<u64>(&reads, &rc) {
            Err(RunError::DeviceOom {
                rank,
                detail,
                high_water_bytes,
            }) => {
                assert!(rank < 6, "mode {mode:?}: rank {rank} out of range");
                assert!(
                    detail.contains("spill budget exhausted"),
                    "mode {mode:?}: {detail}"
                );
                assert_eq!(high_water_bytes.len(), 6, "mode {mode:?}");
                assert!(
                    high_water_bytes.iter().any(|&b| b > 0),
                    "mode {mode:?}: high-water marks must be populated"
                );
            }
            other => panic!("mode {mode:?}: expected DeviceOom, got {other:?}"),
        }
    }
    // The CPU baseline shrugs off the same plan: host tables grow.
    let mut rc = RunConfig::new(Mode::CpuBaseline, 1);
    rc.table_safety = 0.01;
    rc.mem = Some(plan);
    run_typed::<u64>(&reads, &rc).expect("host counting cannot OOM");
}
