//! Cross-validation: a hand-rolled k-mer counter written against the
//! *threaded* engine's `Communicator` trait (real OS threads, real
//! channel exchange — the shape of real MPI rank code) must agree with
//! the BSP pipelines and the oracle.

use dedukt::core::table::HostCountTable;
use dedukt::core::verify::reference_counts;
use dedukt::core::{pipeline, Mode, RunConfig};
use dedukt::dna::kmer::kmer_words;
use dedukt::dna::{Dataset, DatasetId, ScalePreset};
use dedukt::hash::{owner_rank_mult_shift, Murmur3x64};
use dedukt::net::{Communicator, ThreadedWorld};
use std::collections::HashMap;

/// Algorithm 1 written as rank code over the Communicator trait.
fn threaded_count(reads: &dedukt::dna::ReadSet, nranks: usize, k: usize) -> HashMap<u64, u64> {
    let cfg = RunConfig::new(Mode::CpuBaseline, 1).counting;
    let parts = reads.partition_by_bases(nranks);
    let hasher = Murmur3x64::new(cfg.hash_seed);
    let results = ThreadedWorld::run(nranks, |comm| {
        // PARSEKMER: bucket this rank's k-mers by owner.
        let mut send: Vec<Vec<u64>> = vec![Vec::new(); comm.size()];
        for read in &parts[comm.rank()].reads {
            for w in kmer_words(&read.codes, k, cfg.encoding) {
                send[owner_rank_mult_shift(hasher.hash_u64(w), comm.size())].push(w);
            }
        }
        // EXCHANGEKMER.
        let recv = comm.alltoallv_u64(send);
        // COUNTKMER.
        let mut table: HostCountTable = HostCountTable::with_expected(
            recv.iter().map(Vec::len).sum(),
            0.7,
            cfg.hash_seed ^ 0xC0C0,
        );
        for payload in recv {
            for kmer in payload {
                table.insert(kmer);
            }
        }
        // A sanity collective: total instances must be globally known.
        let global_total = comm.allreduce_sum(table.total());
        comm.barrier();
        (table.iter().collect::<Vec<(u64, u32)>>(), global_total)
    });

    // All ranks must agree on the global total.
    let totals: Vec<u64> = results.iter().map(|(_, t)| *t).collect();
    assert!(
        totals.windows(2).all(|w| w[0] == w[1]),
        "allreduce disagreement"
    );

    let mut merged = HashMap::new();
    for (entries, _) in results {
        for (kmer, count) in entries {
            let prev = merged.insert(kmer, count as u64);
            assert!(prev.is_none(), "k-mer owned by two ranks");
        }
    }
    merged
}

#[test]
fn threaded_engine_matches_oracle() {
    let reads = Dataset::new(DatasetId::EColi30x, ScalePreset::Tiny).generate();
    let cfg = RunConfig::new(Mode::CpuBaseline, 1).counting;
    let oracle = reference_counts(&reads, &cfg);
    let threaded = threaded_count(&reads, 8, cfg.k);
    assert_eq!(threaded.len(), oracle.len());
    for (kmer, count) in &oracle {
        assert_eq!(threaded.get(kmer), Some(count), "k-mer {kmer:#x}");
    }
}

#[test]
fn threaded_engine_matches_bsp_pipeline() {
    let reads = Dataset::new(DatasetId::ABaumannii30x, ScalePreset::Tiny).generate();
    let mut rc = RunConfig::new(Mode::GpuKmer, 1);
    rc.collect_tables = true;
    let bsp = pipeline::run(&reads, &rc).expect("valid config");
    let threaded = threaded_count(&reads, 5, rc.counting.k);

    assert_eq!(bsp.distinct_kmers as usize, threaded.len());
    let bsp_total: u64 = threaded.values().sum();
    assert_eq!(bsp.total_kmers, bsp_total);
    // Per-k-mer equality.
    for table in bsp.tables.as_ref().unwrap() {
        for &(kmer, count) in table {
            assert_eq!(
                threaded.get(&kmer),
                Some(&(count as u64)),
                "k-mer {kmer:#x}"
            );
        }
    }
}

#[test]
fn threaded_engine_is_deterministic_across_rank_counts() {
    let reads = Dataset::new(DatasetId::VVulnificus30x, ScalePreset::Tiny).generate();
    let a = threaded_count(&reads, 3, 17);
    let b = threaded_count(&reads, 11, 17);
    assert_eq!(a, b);
}

/// Wide k (k = 41, u128 keys) through the same unified driver: all
/// three engines must agree with the independent wide oracle key-for-key.
/// (The threaded harness stays narrow — its collective is u64-typed.)
#[test]
fn all_engines_match_wide_oracle_at_k41() {
    let reads = Dataset::new(DatasetId::EColi30x, ScalePreset::Tiny).generate();
    let mut rc = RunConfig::new(Mode::CpuBaseline, 2);
    rc.counting.k = 41;
    rc.counting.m = 11;
    rc.counting.window = 24;
    rc.collect_tables = true;
    let oracle = dedukt::core::wide::wide_reference_counts(&reads, &rc.counting);
    assert!(!oracle.is_empty());
    for mode in [Mode::CpuBaseline, Mode::GpuKmer, Mode::GpuSupermer] {
        rc.mode = mode;
        let report = pipeline::run_typed::<u128>(&reads, &rc).expect("valid wide config");
        assert_eq!(
            report.total_kmers,
            oracle.values().sum::<u64>(),
            "{mode:?}: total"
        );
        assert_eq!(
            report.distinct_kmers as usize,
            oracle.len(),
            "{mode:?}: distinct"
        );
        let mut merged: HashMap<u128, u64> = HashMap::new();
        for table in report.tables.as_ref().expect("tables collected") {
            for &(kmer, count) in table {
                assert!(
                    merged.insert(kmer, count as u64).is_none(),
                    "{mode:?}: k-mer owned by two ranks"
                );
            }
        }
        for (kmer, count) in &oracle {
            assert_eq!(merged.get(kmer), Some(count), "{mode:?}: k-mer {kmer:#x}");
        }
    }
}
