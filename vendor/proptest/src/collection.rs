//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Length specification for [`vec`]: an exact length or a half-open range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

/// A strategy producing `Vec`s of `element` values with a length drawn
/// from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Mirrors `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
