//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Generates values of `Self::Value` from a deterministic RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Boxes the strategy behind a trait object (used by `prop_oneof!`).
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64) + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}
impl_int_ranges!(u8, u16, u32, usize);

// u64 needs its own widening arithmetic (the span may overflow u64).
impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for RangeInclusive<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        if lo == 0 && hi == u64::MAX {
            return rng.next_u64();
        }
        lo + rng.below(hi - lo + 1)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.f64_unit() * (self.end - self.start)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Lazily maps another strategy's output (built by [`Strategy::prop_map`]).
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Uniform choice among same-typed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union from its arms. Panics if empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

macro_rules! impl_tuples {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuples! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// String strategy from a tiny regex subset: exactly `[chars]{min,max}`.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (set, min, max) = parse_class_repeat(self);
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| set[rng.below(set.len() as u64) as usize])
            .collect()
    }
}

/// Parses `[chars]{min,max}` into (alphabet, min, max). Any other pattern
/// is unsupported and panics with a pointer at this module.
fn parse_class_repeat(pattern: &str) -> (Vec<char>, usize, usize) {
    let unsupported = || -> ! {
        panic!(
            "string strategy only supports the `[chars]{{min,max}}` regex subset, got {pattern:?}"
        )
    };
    let rest = pattern.strip_prefix('[').unwrap_or_else(|| unsupported());
    let (class, rest) = rest.split_once(']').unwrap_or_else(|| unsupported());
    let rest = rest.strip_prefix('{').unwrap_or_else(|| unsupported());
    let (bounds, rest) = rest.split_once('}').unwrap_or_else(|| unsupported());
    if !rest.is_empty() || class.is_empty() {
        unsupported();
    }
    let (min, max) = bounds.split_once(',').unwrap_or_else(|| unsupported());
    let min: usize = min.trim().parse().unwrap_or_else(|_| unsupported());
    let max: usize = max.trim().parse().unwrap_or_else(|_| unsupported());
    if min > max {
        unsupported();
    }
    (class.chars().collect(), min, max)
}

/// Types with a canonical strategy, reachable via [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

/// The canonical strategy for an [`Arbitrary`] type.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}
