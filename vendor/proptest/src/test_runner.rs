//! Deterministic test-case runner and RNG.

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections across the whole test.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: regenerate without counting the case.
    Reject,
    /// `prop_assert*!` failed: abort the test with this message.
    Fail(String),
}

/// SplitMix64-backed deterministic RNG (seeded from the test name, so
/// every test gets a stable but distinct stream).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string deterministically.
    pub fn from_name(name: &str) -> Self {
        let mut seed = 0xDEDu64;
        for b in name.bytes() {
            seed = mix64(seed ^ b as u64);
        }
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        mix64(self.state)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Runs `body` until `config.cases` cases pass; panics on the first
/// failing case (inputs are not shrunk — the panic message carries the
/// assertion text).
pub fn run<F>(config: &ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_name(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        match body(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "{name}: too many prop_assume! rejections ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property failed after {passed} passing cases: {msg}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("alpha");
        let mut b = TestRng::from_name("alpha");
        let mut c = TestRng::from_name("beta");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn runner_counts_only_passing_cases() {
        let mut seen = 0u32;
        let cfg = ProptestConfig::with_cases(10);
        run(&cfg, "count", |rng| {
            if rng.next_u64() % 3 == 0 {
                return Err(TestCaseError::Reject);
            }
            seen += 1;
            Ok(())
        });
        assert_eq!(seen, 10);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn runner_panics_on_failure() {
        run(&ProptestConfig::default(), "boom", |_| {
            Err(TestCaseError::Fail("nope".into()))
        });
    }
}
