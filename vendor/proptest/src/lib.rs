//! In-tree stand-in for the `proptest` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the subset of proptest it uses: the `proptest!` /
//! `prop_assert*!` / `prop_assume!` / `prop_oneof!` macros, integer and
//! float range strategies, `Just`, tuples, `prop_map`, `any::<bool>()`,
//! `prop::collection::vec`, and a minimal `[set]{min,max}` string-regex
//! strategy. Failing inputs are reported verbatim; there is no shrinking.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    pub mod prop {
        //! Mirrors the `prop` module alias from proptest's prelude.
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item expands to a `#[test]` that runs the body over many generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                __outcome
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fails the current test case (with an optional formatted message) if the
/// condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case if the two expressions are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            __l,
            __r,
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Fails the current test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` == `{:?}` ({} == {})",
            __l,
            __r,
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, $($fmt)+);
    }};
}

/// Rejects the current test case (it is regenerated, not counted) if the
/// assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
