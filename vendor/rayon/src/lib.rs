//! In-tree stand-in for the `rayon` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the small slice of rayon's API it actually uses:
//! `into_par_iter()` on ranges and vectors, followed by `.map(...)` and
//! either `.collect()` (order-preserving) or `.reduce(identity, op)`.
//! Work is executed on scoped std threads, chunked by available
//! parallelism, so simulated "thread blocks" still genuinely interleave —
//! the determinism contract of the workspace (concurrent inserts may land
//! in different slots run-to-run, user-visible results may not differ)
//! continues to be exercised for real.

use std::ops::Range;

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::IntoParallelIterator;
}

fn worker_count(items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    hw.min(items).max(1)
}

/// Runs `f` over `items` on scoped threads, preserving input order in the
/// output.
fn run_parallel<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = worker_count(n);
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = n.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let per_chunk: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(n);
    for mut part in per_chunk {
        out.append(&mut part);
    }
    out
}

/// Conversion into a parallel iterator (the only entry point the
/// workspace uses).
pub trait IntoParallelIterator {
    /// Element type produced by the iterator.
    type Item: Send;
    /// Materialises the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

macro_rules! impl_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
impl_range!(u32, u64, usize);

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// A materialised parallel iterator over owned items.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps every item through `f`; execution is deferred until a
    /// consuming adapter runs.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParIter::map`]: items plus the mapping closure.
pub struct ParMap<T: Send, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Executes the map in parallel and collects results in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        run_parallel(self.items, &self.f).into_iter().collect()
    }

    /// Executes the map in parallel and folds the results with `op`,
    /// seeding each chunk with `identity()`.
    pub fn reduce<R, ID, OP>(self, identity: ID, op: OP) -> R
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        ID: Fn() -> R + Sync,
        OP: Fn(R, R) -> R + Sync,
    {
        run_parallel(self.items, &self.f)
            .into_iter()
            .fold(identity(), &op)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let squares: Vec<u64> = (0u64..1000).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 1000);
        for (i, s) in squares.iter().enumerate() {
            assert_eq!(*s, (i * i) as u64);
        }
    }

    #[test]
    fn reduce_sums() {
        let total: u64 = (0u64..101)
            .into_par_iter()
            .map(|i| 2 * i)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 10100);
    }

    #[test]
    fn empty_and_single() {
        let v: Vec<u32> = (0u32..0).into_par_iter().map(|i| i + 1).collect();
        assert!(v.is_empty());
        let one: Vec<u32> = (5u32..6).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(one, vec![6]);
    }

    #[test]
    fn vec_source_works() {
        let doubled: Vec<i32> = vec![3, 1, 4, 1, 5]
            .into_par_iter()
            .map(|x: i32| x * 2)
            .collect();
        assert_eq!(doubled, vec![6, 2, 8, 2, 10]);
    }
}
