//! In-tree stand-in for the `criterion` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the slice of criterion's API its benches use:
//! `criterion_group!`/`criterion_main!`, benchmark groups, `iter` /
//! `iter_with_setup`, throughput annotation, and `black_box`. Timing is a
//! simple mean over a fixed wall-clock budget — good enough for relative
//! before/after comparisons, with none of criterion's statistics.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget per benchmark (after one warm-up call).
const MEASURE_BUDGET: Duration = Duration::from_millis(200);

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup { throughput: None }
    }
}

/// Throughput annotation attached to subsequent benchmarks in a group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one parameterised benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// A group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup {
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the throughput used to report rates for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs a benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    /// Runs a benchmark closure against a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        self.report(&id.label, &b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn report(&self, label: &str, b: &Bencher) {
        let mean = b.mean_iter_time();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!("  {:.3} Melem/s", n as f64 / mean / 1e6)
            }
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                format!("  {:.3} MiB/s", n as f64 / mean / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!("  {label}: {:.3} us/iter{rate}", mean * 1e6);
    }
}

/// Executes and times the benchmark routine.
#[derive(Default)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up
        let start = Instant::now();
        while start.elapsed() < MEASURE_BUDGET {
            black_box(routine());
            self.iters += 1;
        }
        self.total = start.elapsed();
    }

    /// Times repeated calls of `routine` on fresh input from `setup`;
    /// setup time is excluded from the measurement.
    pub fn iter_with_setup<S, R, FS, F>(&mut self, mut setup: FS, mut routine: F)
    where
        FS: FnMut() -> S,
        F: FnMut(S) -> R,
    {
        black_box(routine(setup())); // warm-up
        let deadline = Instant::now() + MEASURE_BUDGET;
        while Instant::now() < deadline {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    fn mean_iter_time(&self) -> f64 {
        if self.iters == 0 {
            return 0.0;
        }
        self.total.as_secs_f64() / self.iters as f64
    }
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut b = Bencher::default();
        b.iter(|| black_box(1u64 + 1));
        assert!(b.iters > 0);
        assert!(b.mean_iter_time() > 0.0);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(10));
        g.bench_function("noop", |b| b.iter(|| black_box(0)));
        g.bench_with_input(BenchmarkId::new("with_input", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }
}
