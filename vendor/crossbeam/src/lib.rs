//! In-tree stand-in for the `crossbeam` crate.
//!
//! The workspace only uses `crossbeam::channel::{unbounded, Sender,
//! Receiver}` (one FIFO per rank pair in the threaded engine), which maps
//! directly onto `std::sync::mpsc` — same unbounded FIFO semantics, same
//! disconnect-on-drop errors.

pub mod channel {
    //! Unbounded FIFO channels, mirroring `crossbeam::channel`.
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender};

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn fifo_order_is_preserved() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn cross_thread_send() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || tx.send(42u64).unwrap());
        assert_eq!(rx.recv().unwrap(), 42);
        t.join().unwrap();
    }

    #[test]
    fn disconnect_errors_out() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
